//! The YCSB driver: closed-loop (the paper's client model) or open-loop.
//!
//! Closed loop is exactly the paper's client: a fixed number of client
//! threads, each issuing its next operation only after the previous response
//! ("The YCSB client will not emit a new request until it receives a
//! response for the prior request"), optionally throttled to a cluster-wide
//! target throughput. Latency is measured client-side in virtual time; a
//! warm-up prefix is excluded; read-modify-write is composed client-side
//! (read, then update, one combined latency) as YCSB does; and every read is
//! checked against the staleness tracker, so consistency is *measured*.
//!
//! Open loop ([`ArrivalMode::OpenLoop`]) replaces the completion-driven
//! reissue with a seed-deterministic Poisson arrival process
//! ([`ycsb::OpenLoop`]): arrivals fire at their drawn virtual instants
//! regardless of how the store is doing, so queues actually build at
//! saturation. Because each arrival is a simulated event, an op's issue
//! time *is* its intended start time — there is no client-side stall that
//! could push issuance late — so open-loop latency percentiles are free of
//! coordinated omission by construction.

use faults::{FaultInjector, FaultPlan, FaultTarget};
use simkit::{OpKey, OpTag, Sim, SimTime, Slab};
use storage::{Key, OpError, OpKind, OpResult, StoreOp};
use ycsb::{
    encode_key, KeyInterner, KeySpace, OpenLoop, RunMetrics, StalenessTracker, Throttle, ValuePool,
    WorkloadSpec,
};

use crate::resilience::{GiveUpReason, RetryDecision, RetryPolicy};
use crate::store::{DriverEvent, SimStore};

/// How client operations arrive at the store.
#[derive(Debug, Clone, Default)]
pub enum ArrivalMode {
    /// The paper's closed loop: each of [`DriverConfig::threads`] client
    /// threads issues its next op only after the previous response,
    /// optionally throttled. The default.
    #[default]
    ClosedLoop,
    /// Open-loop arrivals drawn from a Poisson process (with optional
    /// diurnal modulation, flash crowds, and tenant mixes). `threads` and
    /// `target_ops_per_sec` are ignored; the offered load is the process's
    /// rate, and results are identical at any worker thread count.
    OpenLoop(OpenLoop),
}

impl ArrivalMode {
    /// True for [`ArrivalMode::OpenLoop`].
    pub fn is_open(&self) -> bool {
        matches!(self, ArrivalMode::OpenLoop(_))
    }
}

/// Configuration of one benchmark run.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// The workload to run.
    pub workload: WorkloadSpec,
    /// Client threads.
    pub threads: usize,
    /// Cluster-wide target throughput in ops/second; `0.0` = unthrottled.
    pub target_ops_per_sec: f64,
    /// Records preloaded (the request distribution's initial domain).
    pub records: u64,
    /// Value bytes per written record.
    pub value_len: usize,
    /// Completions discarded before measurement starts.
    pub warmup_ops: u64,
    /// Completions measured.
    pub measure_ops: u64,
    /// Seed for all randomness in the run.
    pub seed: u64,
    /// Faults injected during the run at their absolute virtual times. An
    /// empty plan adds no events and leaves the run bit-identical to one
    /// without fault machinery.
    pub faults: FaultPlan,
    /// Timeline window width (virtual µs) for time-bucketed metrics; `0`
    /// (the default) disables timeline collection entirely.
    pub timeline_window_us: u64,
    /// The client-resilience policy: retries, backoff, deadline budget,
    /// hedged reads. [`RetryPolicy::none`] (the default) schedules no
    /// extra events and draws no randomness, leaving the run bit-identical
    /// to a driver without the resilience layer.
    pub retry: RetryPolicy,
    /// Span-trace sampling. [`obs::TraceConfig::off`] (the default) keeps
    /// the store tracers disabled: no spans are recorded, no events or RNG
    /// draws are added, and the run is bit-identical to a driver without
    /// the tracing layer.
    pub trace: obs::TraceConfig,
    /// Operation-history recording for the consistency auditors.
    /// [`audit::AuditConfig::off`] (the default) keeps the recorder
    /// disabled: no records are kept, no events or RNG draws are added,
    /// and the run is bit-identical to a driver without the audit layer.
    pub audit: audit::AuditConfig,
    /// Arrival model. [`ArrivalMode::ClosedLoop`] (the default) is the
    /// paper's client and is bit-identical to the pre-open-loop driver.
    pub arrival: ArrivalMode,
}

impl DriverConfig {
    /// A run with sane defaults for the given workload and record count.
    pub fn new(workload: WorkloadSpec, records: u64) -> Self {
        Self {
            workload,
            threads: 64,
            target_ops_per_sec: 0.0,
            records,
            value_len: 100,
            warmup_ops: 2_000,
            measure_ops: 20_000,
            seed: 42,
            faults: FaultPlan::new(),
            timeline_window_us: 0,
            retry: RetryPolicy::none(),
            trace: obs::TraceConfig::off(),
            audit: audit::AuditConfig::off(),
            arrival: ArrivalMode::ClosedLoop,
        }
    }
}

/// What one benchmark run produced.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Latency histograms and counters over the measured window.
    pub metrics: RunMetrics,
    /// Runtime throughput over the measured window (ops/s).
    pub throughput: f64,
    /// Mean latency over the measured window (µs).
    pub mean_latency_us: f64,
    /// Failed operations during the measured window.
    pub errors: u64,
    /// Stale reads / checked reads over the measured window.
    pub stale_fraction: f64,
    /// Virtual time the whole run took.
    pub sim_duration_us: u64,
    /// Simulation events dispatched over the whole run (driver wake-ups
    /// plus store-internal events) — the denominator of engine speed.
    pub events_dispatched: u64,
    /// Fault-plan events actually applied before the run finished.
    pub faults_injected: u64,
    /// Operations still tracked by the client when the run ended. Zero for
    /// any run that completed its full operation count — every issued op
    /// must settle exactly once (the no-token-leak invariant of the retry
    /// and deadline paths). Nonzero only when the run quiesced early.
    pub unsettled_ops: u64,
    /// Store behaviour counters at the end of the run (cumulative).
    pub counters: Vec<(&'static str, u64)>,
    /// Per-op span trees for the sampled operations, when
    /// [`DriverConfig::trace`] enabled tracing; `None` otherwise.
    pub trace: Option<obs::RunTrace>,
    /// The recorded operation history, when [`DriverConfig::audit`]
    /// enabled recording; `None` otherwise.
    pub audit: Option<audit::History>,
}

/// Bulk-load `records` records (functional, instant) and flush, leaving the
/// store in the paper's post-warm-up state: data in sorted runs, caches at
/// steady state (the paper runs long precisely to get past cold start).
pub fn load<S: SimStore>(store: &mut S, records: u64, value_len: usize, seed: u64) {
    let mut rng = simkit::SimRng::new(seed ^ 0x10AD);
    let pool = ValuePool::new(value_len, 4);
    for i in 0..records {
        store.load_direct(encode_key(i), pool.next(&mut rng), 1);
    }
    store.flush_all();
    store.warm_caches();
}

/// Client-side state of one *logical* operation, stored in a slab and
/// addressed by [`OpKey`]. Retries and hedges submit further attempts whose
/// tokens map back to the same slab slot; the op settles (records one
/// latency or one error) exactly once, when an attempt completes and the
/// policy stops. The RMW write phase re-inserts the context so read-phase
/// attempt keys go stale, exactly like the old token re-keying did.
struct OpCtx {
    /// Closed loop: the issuing client thread (indexes `throttles`).
    /// Open loop: the issuing tenant's index in the arrival mix.
    thread: usize,
    /// Scheduling metadata carried to the store's admission controller on
    /// every attempt of this op.
    tag: OpTag,
    kind: OpKind,
    issued: SimTime,
    /// Absolute give-up time ([`SimTime::MAX`] when unbounded).
    deadline: SimTime,
    /// The submitted operation, kept for re-submission by retries/hedges.
    op: StoreOp,
    key: Key,
    expected_ts: u64,
    rmw_read_phase: bool,
    /// True once any retry or winning hedge helped this op: its eventual
    /// success counts as recovered goodput, not first-try goodput.
    recovered: bool,
    /// Attempts submitted across all phases (≥ 1).
    attempts_total: u32,
    /// Retries spent on the current phase (resets at the RMW write phase).
    retries: u32,
    /// Attempts currently outstanding at the store (1, or 2 while hedged).
    in_flight: u32,
    hedged: bool,
    /// The hedge attempt's token, to spot a speculative win at drain.
    hedge_token: Option<u64>,
    /// Logical trace id (the first attempt's token) when this op is being
    /// traced; `None` for unsampled ops.
    trace_id: Option<u64>,
}

/// Dense map from attempt token to its op's slab key. Tokens are issued
/// sequentially, so a `Vec` indexed by token replaces a hash lookup on the
/// completion drain path; [`OpKey::NONE`] marks consumed/unknown entries.
struct AttemptTable(Vec<OpKey>);

impl AttemptTable {
    fn set(&mut self, token: u64, key: OpKey) {
        let i = token as usize;
        if self.0.len() <= i {
            self.0.resize(i + 1, OpKey::NONE);
        }
        self.0[i] = key;
    }

    fn take(&mut self, token: u64) -> OpKey {
        match self.0.get_mut(token as usize) {
            Some(slot) => std::mem::replace(slot, OpKey::NONE),
            None => OpKey::NONE,
        }
    }
}

/// Run one benchmark against a loaded store. Faults listed in
/// [`DriverConfig::faults`] are scheduled into the same event queue as
/// client wake-ups and store events, so they land at exact virtual
/// instants interleaved with operations.
pub fn run<S>(store: &mut S, cfg: &DriverConfig) -> RunOutcome
where
    S: SimStore + FaultTarget<Event = <S as SimStore>::Event>,
{
    assert!(cfg.threads > 0, "need at least one client thread");
    let total = cfg.warmup_ops + cfg.measure_ops;
    let mut sim: Sim<DriverEvent<<S as SimStore>::Event>> = Sim::new(cfg.seed);
    let mut dist = cfg.workload.request_distribution(cfg.records);
    let mut keyspace = KeySpace::new(cfg.records);
    // Skewed request distributions hammer a small hot set; intern their
    // encoded keys so repeats are a slot probe + refcount bump. Bounded at
    // 64Ki slots (or the record count when smaller).
    let mut interner = KeyInterner::new((cfg.records as usize).min(1 << 16));
    let pool = ValuePool::new(cfg.value_len, 4);
    let mut throttles: Vec<Throttle> = (0..cfg.threads)
        .map(|_| Throttle::for_target(cfg.target_ops_per_sec, cfg.threads))
        .collect();
    let mut tracker = StalenessTracker::new();
    let mut metrics = RunMetrics::new();
    // Logical op contexts, slab-allocated ...
    let mut ctxs: Slab<OpCtx> = Slab::new();
    // ... and every outstanding attempt token mapped back to its op's slab
    // key. An attempt whose key has gone stale is a cancelled hedge loser.
    let mut attempt_of = AttemptTable(Vec::new());
    let mut next_token: u64 = 1;
    let mut issued: u64 = 0;
    let mut completed: u64 = 0;
    // Tracing bookkeeping. All of it is gated on `tracing`, and the tracer
    // itself is pure bookkeeping (no events, no RNG), so a disabled run is
    // bit-identical to one without any of this machinery.
    let tracing = cfg.trace.enabled();
    if tracing {
        store.tracer_mut().enable();
    }
    // Audit bookkeeping. Gated on `auditing`, and the recorder itself is
    // pure bookkeeping (no events, no RNG), so a disabled run is
    // bit-identical to one without any of this machinery.
    let auditing = cfg.audit.enabled();
    let mut recorder = audit::Recorder::new(cfg.audit, cfg.seed);
    // Attempt token -> logical op id, for every attempt of a traced op.
    // Retries, hedges, and the RMW write phase submit fresh tokens whose
    // spans must fold back into the logical op's trace.
    let mut trace_of: simkit::FastHashMap<u64, u64> = simkit::FastHashMap::default();
    // Settle metadata of traced ops: (logical id, kind, issued, settled, ok).
    let mut traced_settled: Vec<(u64, OpKind, SimTime, SimTime, bool)> = Vec::new();
    let mut window_start: SimTime = 0;
    let mut window_end: SimTime = 0;
    if cfg.timeline_window_us > 0 {
        metrics.enable_timeline(cfg.timeline_window_us);
    }

    // Faults first, so a fault at the same instant as a client wake-up
    // applies before the operation is issued (matters for crash-at-zero
    // plans, which must behave like a store failed before the run).
    let mut injector = FaultInjector::new(cfg.faults.clone());
    injector.schedule(&mut sim, |index| DriverEvent::Fault { index });

    let open_loop = cfg.arrival.is_open();
    match &cfg.arrival {
        // Stagger thread start within the first millisecond.
        ArrivalMode::ClosedLoop => {
            for t in 0..cfg.threads {
                sim.schedule_at((t as u64) * 13 % 1_000, DriverEvent::Issue { thread: t });
            }
        }
        // One seed arrival; each arrival chains the next from the Poisson
        // process, so the client-thread count never enters the schedule.
        ArrivalMode::OpenLoop(_) => {
            sim.schedule_at(0, DriverEvent::Issue { thread: 0 });
        }
    }

    while completed < total {
        let Some(ev) = sim.next() else {
            break; // quiesced early (all threads done)
        };
        match ev {
            DriverEvent::Issue { thread } => {
                if issued >= total {
                    continue;
                }
                issued += 1;
                let now = sim.now();
                // Closed loop: `thread` is the issuing client thread and the
                // kind comes from the workload mix. Open loop: this wake-up
                // is one Poisson arrival — draw the issuing tenant, its mix,
                // any flash-crowd hot-key redirect, and chain the next
                // arrival at its drawn instant.
                let (client, priority, kind, flash_key) = match &cfg.arrival {
                    ArrivalMode::ClosedLoop => {
                        (thread, 0u8, cfg.workload.mix.choose(sim.rng()), None)
                    }
                    ArrivalMode::OpenLoop(ol) => {
                        let tenant = ol.pick_tenant(sim.rng());
                        let mix = ol.tenants[tenant].mix.as_ref().unwrap_or(&cfg.workload.mix);
                        let kind = mix.choose(sim.rng());
                        let hot = ol.flash_redirect(now, sim.rng());
                        let gap = ol.next_interarrival_us(now, sim.rng());
                        if issued < total {
                            sim.schedule_in(gap, DriverEvent::Issue { thread: 0 });
                        }
                        (tenant, ol.tenants[tenant].priority, kind, hot)
                    }
                };
                let token = next_token;
                next_token += 1;
                let (op, key, expected_ts, rmw) = match kind {
                    OpKind::Read | OpKind::ReadModifyWrite => {
                        let key = interner.key(match flash_key {
                            Some(hot) => hot,
                            None => dist.next(sim.rng()),
                        });
                        let expected = tracker.expected(&key);
                        (
                            StoreOp::Read { key: key.clone() },
                            key,
                            expected,
                            kind == OpKind::ReadModifyWrite,
                        )
                    }
                    OpKind::Update => {
                        let key = interner.key(match flash_key {
                            Some(hot) => hot,
                            None => dist.next(sim.rng()),
                        });
                        (
                            StoreOp::Update {
                                key: key.clone(),
                                value: pool.next(sim.rng()),
                            },
                            key,
                            0,
                            false,
                        )
                    }
                    OpKind::Insert => {
                        let (_, key) = keyspace.next_insert();
                        dist.set_items(keyspace.count());
                        (
                            StoreOp::Insert {
                                key: key.clone(),
                                value: pool.next(sim.rng()),
                            },
                            key,
                            0,
                            false,
                        )
                    }
                    OpKind::Scan => {
                        let start = interner.key(match flash_key {
                            Some(hot) => hot,
                            None => dist.next(sim.rng()),
                        });
                        let limit = cfg.workload.scan_len(sim.rng());
                        (
                            StoreOp::Scan {
                                start: start.clone(),
                                limit,
                            },
                            start,
                            0,
                            false,
                        )
                    }
                    OpKind::Delete => {
                        let key = interner.key(match flash_key {
                            Some(hot) => hot,
                            None => dist.next(sim.rng()),
                        });
                        (StoreOp::Delete { key: key.clone() }, key, 0, false)
                    }
                };
                // Deterministic sampling by 0-based issue index: the same
                // seed and sampling config always trace the same ops.
                let trace_id = if tracing && cfg.trace.samples(issued - 1, cfg.seed) {
                    trace_of.insert(token, token);
                    store.tracer_mut().watch(token);
                    Some(token)
                } else {
                    None
                };
                let deadline = cfg.retry.deadline_at(now);
                let tag = OpTag { priority, deadline };
                let opkey = ctxs.insert(OpCtx {
                    thread: client,
                    tag,
                    kind,
                    issued: now,
                    deadline,
                    op: op.clone(),
                    key,
                    expected_ts,
                    rmw_read_phase: rmw,
                    recovered: false,
                    attempts_total: 1,
                    retries: 0,
                    in_flight: 1,
                    hedged: false,
                    hedge_token: None,
                    trace_id,
                });
                attempt_of.set(token, opkey);
                metrics.resilience_mut().attempts += 1;
                store.submit_tagged(&mut sim, token, op, tag);
                // Hedging covers point reads only (including the RMW read
                // phase); the event is harmless if the op settles first.
                if cfg.retry.hedges() && matches!(kind, OpKind::Read | OpKind::ReadModifyWrite) {
                    sim.schedule_in(cfg.retry.hedge_after_us, DriverEvent::Hedge { op: opkey });
                }
            }
            DriverEvent::Retry { op } => {
                // Scheduled only while its op is pending with nothing in
                // flight, so the ctx is present; guard anyway.
                if let Some(ctx) = ctxs.get_mut(op) {
                    let token = next_token;
                    next_token += 1;
                    ctx.attempts_total += 1;
                    ctx.in_flight += 1;
                    attempt_of.set(token, op);
                    metrics.resilience_mut().attempts += 1;
                    if let Some(logical) = ctx.trace_id {
                        trace_of.insert(token, logical);
                        store.tracer_mut().watch(token);
                    }
                    let resubmit = ctx.op.clone();
                    let tag = ctx.tag;
                    store.submit_tagged(&mut sim, token, resubmit, tag);
                }
            }
            DriverEvent::Hedge { op } => {
                // Speculative second read: only if the op is still pending
                // on its first attempt, is a point read (an RMW may have
                // moved on to its write phase), and has deadline budget.
                if let Some(ctx) = ctxs.get_mut(op) {
                    if !ctx.hedged
                        && ctx.in_flight == 1
                        && matches!(ctx.op, StoreOp::Read { .. })
                        && sim.now() < ctx.deadline
                    {
                        let token = next_token;
                        next_token += 1;
                        ctx.hedged = true;
                        ctx.hedge_token = Some(token);
                        ctx.attempts_total += 1;
                        ctx.in_flight += 1;
                        attempt_of.set(token, op);
                        metrics.resilience_mut().hedges += 1;
                        metrics.resilience_mut().attempts += 1;
                        if let Some(logical) = ctx.trace_id {
                            trace_of.insert(token, logical);
                            store.tracer_mut().watch(token);
                        }
                        let resubmit = ctx.op.clone();
                        let tag = ctx.tag;
                        store.submit_tagged(&mut sim, token, resubmit, tag);
                    }
                }
            }
            DriverEvent::Fault { index } => {
                injector.fire(&mut sim, store, index);
            }
            DriverEvent::Store(ev) => {
                store.handle(&mut sim, ev);
            }
        }
        // Drain completions produced by this dispatch.
        for c in store.drain_completions() {
            let opkey = attempt_of.take(c.token);
            if opkey.is_none() {
                continue;
            }
            let Some(ctx) = ctxs.get_mut(opkey) else {
                // The op already settled through another attempt (the slab
                // generation moved on): the losing side of a hedge race,
                // cancelled at drain.
                metrics.resilience_mut().hedge_cancelled += 1;
                continue;
            };
            ctx.in_flight -= 1;
            let now = sim.now();
            let in_window = completed >= cfg.warmup_ops;
            if let OpResult::Error(e) = &c.result {
                // A hedge twin is still racing: let it decide the op.
                if ctx.in_flight > 0 {
                    continue;
                }
                match cfg
                    .retry
                    .on_error(*e, ctx.retries, now, ctx.deadline, sim.rng())
                {
                    RetryDecision::RetryAt(at) => {
                        ctx.retries += 1;
                        ctx.recovered = true;
                        metrics.resilience_mut().retries += 1;
                        if tracing {
                            if let Some(logical) = ctx.trace_id {
                                store.tracer_mut().record(
                                    logical,
                                    obs::Stage::RetryBackoff,
                                    obs::CLIENT_NODE,
                                    now,
                                    at,
                                );
                            }
                        }
                        sim.schedule_at(at, DriverEvent::Retry { op: opkey });
                        continue;
                    }
                    RetryDecision::GiveUp(reason) => {
                        if reason == GiveUpReason::DeadlineExceeded {
                            metrics.resilience_mut().deadline_exceeded += 1;
                        }
                        metrics.note_timeline_error(now, ctx.attempts_total);
                        if in_window {
                            metrics.record_error();
                            if open_loop {
                                metrics.record_tenant_error(ctx.thread, *e == OpError::Overloaded);
                            }
                        }
                        // Fall through: the op settles as one client error.
                    }
                }
            } else {
                // A success from the speculative attempt is a hedge win.
                if ctx.hedge_token == Some(c.token) {
                    metrics.resilience_mut().hedge_wins += 1;
                    ctx.recovered = true;
                }
                // RMW read phase: chain the write without finishing the op.
                // Per-phase retry/hedge state resets; the deadline budget
                // and recovered flag span the whole logical op. Re-inserting
                // bumps the slab generation, so any still-racing read-phase
                // attempt resolves to a stale key (a cancelled hedge loser).
                if ctx.rmw_read_phase {
                    let Some(mut ctx) = ctxs.remove(opkey) else {
                        continue; // unreachable: get_mut above proved it live
                    };
                    let token = next_token;
                    next_token += 1;
                    let op = StoreOp::Update {
                        key: ctx.key.clone(),
                        value: pool.next(sim.rng()),
                    };
                    ctx.rmw_read_phase = false;
                    ctx.op = op.clone();
                    ctx.retries = 0;
                    ctx.hedged = false;
                    ctx.hedge_token = None;
                    ctx.attempts_total += 1;
                    ctx.in_flight = 1;
                    let trace_id = ctx.trace_id;
                    let tag = ctx.tag;
                    let newkey = ctxs.insert(ctx);
                    attempt_of.set(token, newkey);
                    metrics.resilience_mut().attempts += 1;
                    // The write phase submits a fresh token; keep mapping
                    // its spans back to the original trace id.
                    if let Some(logical) = trace_id {
                        trace_of.insert(token, logical);
                        store.tracer_mut().watch(token);
                    }
                    store.submit_tagged(&mut sim, token, op, tag);
                    continue;
                }
                match &c.result {
                    OpResult::Written { ts } => {
                        tracker.write_acked(ctx.key.clone(), *ts);
                    }
                    OpResult::Value(cell) => {
                        let check =
                            tracker.check_read(ctx.expected_ts, cell.as_ref().map(|c| c.ts));
                        if in_window {
                            metrics.record_read_check(check.stale, check.missing);
                        }
                    }
                    _ => {}
                }
                // The timeline (when enabled) spans the whole run including
                // warm-up: a failure curve needs the pre-fault baseline.
                metrics.note_timeline(now, now - ctx.issued, ctx.recovered, ctx.attempts_total);
                if in_window {
                    metrics.record(ctx.kind, now - ctx.issued);
                    if open_loop {
                        metrics.record_tenant(ctx.thread, now - ctx.issued);
                    }
                }
                let res = metrics.resilience_mut();
                if ctx.recovered {
                    res.retried_ok += 1;
                } else {
                    res.first_try_ok += 1;
                }
            }
            // The op settles here, exactly once, on success or give-up.
            let Some(ctx) = ctxs.remove(opkey) else {
                continue; // unreachable: every path above kept the slot live
            };
            if auditing {
                recorder.push(audit::OpRecord {
                    client: ctx.thread as u32,
                    kind: ctx.kind,
                    key: ctx.key.clone(),
                    issued: ctx.issued,
                    settled: now,
                    measured: in_window,
                    fate: match &c.result {
                        OpResult::Written { ts } => audit::Fate::Write { ts: *ts },
                        OpResult::Value(cell) => audit::Fate::Read {
                            expected_ts: ctx.expected_ts,
                            observed_ts: cell.as_ref().map(|cl| cl.ts),
                        },
                        OpResult::Rows(_) => audit::Fate::Scanned,
                        OpResult::Error(_) => audit::Fate::Failed,
                    },
                });
            }
            if tracing {
                if let Some(logical) = ctx.trace_id {
                    let ok = !matches!(c.result, OpResult::Error(_));
                    traced_settled.push((logical, ctx.kind, ctx.issued, now, ok));
                }
            }
            completed += 1;
            if completed == cfg.warmup_ops {
                window_start = now;
            }
            if completed >= total {
                window_end = now;
            }
            // Closed loop: the thread's next issue. (Open loop arrivals are
            // chained from the arrival process, not from completions.)
            if !open_loop && issued < total {
                let due = throttles[ctx.thread].next_issue(now);
                sim.schedule_at(due, DriverEvent::Issue { thread: ctx.thread });
            }
        }
    }

    if window_end == 0 {
        window_end = sim.now();
    }
    // Assemble the per-op traces: fold every attempt's spans back onto its
    // logical op, split off background activity, order deterministically.
    let trace = if tracing {
        let mut by_op: std::collections::BTreeMap<u64, Vec<obs::StageSpan>> = Default::default();
        let mut background: Vec<obs::StageSpan> = Vec::new();
        for mut s in store.tracer_mut().take_spans() {
            if s.op == obs::BG_OP {
                background.push(s);
                continue;
            }
            let Some(&logical) = trace_of.get(&s.op) else {
                continue;
            };
            s.op = logical;
            by_op.entry(logical).or_default().push(s);
        }
        background.sort_by_key(|s| s.sort_key());
        traced_settled.sort_by_key(|&(id, ..)| id);
        let ops = traced_settled
            .into_iter()
            .map(|(id, kind, issued_at, settled, ok)| {
                let mut spans = by_op.remove(&id).unwrap_or_default();
                spans.sort_by_key(|s| s.sort_key());
                obs::OpTrace {
                    op: id,
                    kind,
                    issued: issued_at,
                    settled,
                    ok,
                    spans,
                }
            })
            .collect();
        Some(obs::RunTrace { ops, background })
    } else {
        None
    };
    metrics.set_window(window_start, window_end);
    let (stale, checked) = metrics.staleness();
    RunOutcome {
        throughput: metrics.throughput(),
        mean_latency_us: metrics.overall().mean(),
        errors: metrics.errors(),
        stale_fraction: if checked == 0 {
            0.0
        } else {
            stale as f64 / checked as f64
        },
        sim_duration_us: sim.now(),
        events_dispatched: sim.dispatched(),
        faults_injected: injector.applied(),
        unsettled_ops: ctxs.len() as u64,
        counters: store.counters(),
        trace,
        audit: if auditing {
            Some(recorder.finish())
        } else {
            None
        },
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{build_cstore, build_hstore, Scale};
    use cstore::Consistency;

    fn quick_cfg(workload: WorkloadSpec, scale: &Scale) -> DriverConfig {
        DriverConfig {
            threads: 8,
            warmup_ops: 200,
            measure_ops: 1_000,
            value_len: scale.value_len,
            ..DriverConfig::new(workload, scale.records)
        }
    }

    #[test]
    fn cstore_read_mostly_end_to_end() {
        let scale = Scale::tiny();
        let mut store = build_cstore(&scale, 3, Consistency::One, Consistency::One);
        load(&mut store, scale.records, scale.value_len, 1);
        let out = run(&mut store, &quick_cfg(WorkloadSpec::read_mostly(), &scale));
        assert_eq!(out.metrics.ops(), 1_000);
        assert_eq!(out.errors, 0);
        assert!(out.throughput > 0.0);
        assert!(out.mean_latency_us > 0.0);
        assert!(out.metrics.for_op(OpKind::Read).is_some());
        assert!(out.metrics.for_op(OpKind::Update).is_some());
    }

    #[test]
    fn hstore_read_mostly_end_to_end() {
        let scale = Scale::tiny();
        let mut store = build_hstore(&scale, 3);
        load(&mut store, scale.records, scale.value_len, 1);
        let out = run(&mut store, &quick_cfg(WorkloadSpec::read_mostly(), &scale));
        assert_eq!(out.metrics.ops(), 1_000);
        assert_eq!(out.errors, 0);
        assert!(out.throughput > 0.0);
    }

    #[test]
    fn rmw_workload_composes_read_plus_write() {
        let scale = Scale::tiny();
        let mut store = build_hstore(&scale, 2);
        load(&mut store, scale.records, scale.value_len, 1);
        let out = run(
            &mut store,
            &quick_cfg(WorkloadSpec::read_modify_write(), &scale),
        );
        let rmw = out
            .metrics
            .for_op(OpKind::ReadModifyWrite)
            .expect("rmw ran");
        let read = out.metrics.for_op(OpKind::Read).expect("read ran");
        // An RMW is a read plus a write: its mean must exceed a plain read's.
        assert!(rmw.mean() > read.mean());
    }

    #[test]
    fn scan_workload_runs_and_inserts_grow_keyspace() {
        let scale = Scale::tiny();
        let mut store = build_cstore(&scale, 2, Consistency::One, Consistency::One);
        load(&mut store, scale.records, scale.value_len, 1);
        let out = run(
            &mut store,
            &quick_cfg(WorkloadSpec::scan_short_ranges(), &scale),
        );
        assert!(out.metrics.for_op(OpKind::Scan).is_some());
        assert!(out.metrics.for_op(OpKind::Insert).is_some());
        assert_eq!(out.errors, 0);
    }

    #[test]
    fn throttling_caps_runtime_throughput() {
        let scale = Scale::tiny();
        let mut base = build_hstore(&scale, 2);
        load(&mut base, scale.records, scale.value_len, 1);
        let unthrottled = run(
            &mut base.clone(),
            &quick_cfg(WorkloadSpec::read_mostly(), &scale),
        );
        let mut cfg = quick_cfg(WorkloadSpec::read_mostly(), &scale);
        cfg.target_ops_per_sec = 500.0;
        let throttled = run(&mut base.clone(), &cfg);
        assert!(
            throttled.throughput < unthrottled.throughput,
            "throttled {} vs unthrottled {}",
            throttled.throughput,
            unthrottled.throughput
        );
        // Runtime tracks the target when capacity allows (within 15%).
        assert!(
            (throttled.throughput - 500.0).abs() / 500.0 < 0.15,
            "runtime {} should approximate the 500 ops/s target",
            throttled.throughput
        );
    }

    #[test]
    fn quorum_runs_have_zero_staleness() {
        let scale = Scale::tiny();
        let mut store = build_cstore(&scale, 3, Consistency::Quorum, Consistency::Quorum);
        load(&mut store, scale.records, scale.value_len, 1);
        let out = run(&mut store, &quick_cfg(WorkloadSpec::read_update(), &scale));
        assert_eq!(
            out.stale_fraction, 0.0,
            "W+R>N must never serve a stale acknowledged write"
        );
    }

    #[test]
    fn driver_is_deterministic() {
        let scale = Scale::tiny();
        let go = || {
            let mut store = build_cstore(&scale, 2, Consistency::One, Consistency::One);
            load(&mut store, scale.records, scale.value_len, 1);
            let out = run(&mut store, &quick_cfg(WorkloadSpec::read_update(), &scale));
            (
                out.metrics.ops(),
                out.sim_duration_us,
                out.metrics.overall().max(),
            )
        };
        assert_eq!(go(), go());
    }
}
