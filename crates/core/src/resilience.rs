//! Client-side resilience policy: retries, backoff, deadlines, hedging.
//!
//! Real serving-store clients (the YCSB DB bindings, the DataStax driver,
//! HBase's `HTable`) are not fair-weather: they retry transient failures
//! with exponential backoff, bound each operation by a deadline budget, and
//! — for tail-latency-sensitive reads — hedge, issuing a speculative second
//! attempt after a p99-ish delay and taking whichever completes first. This
//! module is the *policy* half of that layer: pure decision logic with no
//! simulator state, driven by the driver's event loop so every retry and
//! hedge lands at a deterministic virtual instant. Backoff jitter draws
//! from the run's [`SimRng`], keeping runs bit-identical for a fixed seed —
//! and since a [`RetryPolicy::none`] policy never reaches a jitter draw, it
//! leaves the RNG stream (and therefore the whole run) untouched.
//!
//! This module is a retry path: swallowing a failure here turns into a
//! silently hung client, so unwraps are banned outright (CI greps for the
//! attribute below staying in place).
#![deny(clippy::unwrap_used, clippy::expect_used)]

use simkit::{SimRng, SimTime};
use storage::OpError;

/// Retry/backoff/deadline/hedging policy applied by the driver to every
/// logical client operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts per operation phase, counting the first (`1` =
    /// never retry).
    pub max_attempts: u32,
    /// Backoff before the first retry, µs; doubles per retry.
    pub base_backoff_us: u64,
    /// Ceiling on a single backoff, µs.
    pub max_backoff_us: u64,
    /// Per-operation deadline budget measured from first issue, µs; `0` =
    /// unbounded. Once a retry would land past the budget the operation
    /// fails with [`OpError::Deadline`] instead of retrying.
    pub deadline_us: u64,
    /// Issue a speculative second attempt for point reads still incomplete
    /// this long after issue, µs; `0` disables hedging.
    pub hedge_after_us: u64,
}

/// What the policy decides after a failed attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryDecision {
    /// Re-submit the attempt at this absolute virtual time.
    RetryAt(SimTime),
    /// Surface the failure to the client.
    GiveUp(GiveUpReason),
}

/// Why the policy stopped retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GiveUpReason {
    /// The error is terminal; retrying cannot help.
    Terminal,
    /// The attempt budget ([`RetryPolicy::max_attempts`]) is spent.
    AttemptsExhausted,
    /// The next retry would land past the operation's deadline.
    DeadlineExceeded,
}

impl RetryPolicy {
    /// The fair-weather client: one attempt, no hedging, no deadline. A
    /// driver run under this policy is bit-identical to one predating the
    /// resilience layer.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            base_backoff_us: 0,
            max_backoff_us: 0,
            deadline_us: 0,
            hedge_after_us: 0,
        }
    }

    /// A retrying client: up to `max_attempts` attempts with exponential
    /// backoff from `base_backoff_us` (capped at 16× base) under a
    /// `deadline_us` budget. No hedging.
    pub fn retrying(max_attempts: u32, base_backoff_us: u64, deadline_us: u64) -> Self {
        assert!(max_attempts >= 1, "a policy needs at least one attempt");
        Self {
            max_attempts,
            base_backoff_us,
            max_backoff_us: base_backoff_us.saturating_mul(16),
            deadline_us,
            hedge_after_us: 0,
        }
    }

    /// This policy plus hedged reads after `hedge_after_us`.
    pub fn with_hedge(mut self, hedge_after_us: u64) -> Self {
        self.hedge_after_us = hedge_after_us;
        self
    }

    /// True when the policy hedges reads.
    pub fn hedges(&self) -> bool {
        self.hedge_after_us > 0
    }

    /// The absolute deadline of an operation first issued at `issued`
    /// (`SimTime::MAX` when unbounded).
    pub fn deadline_at(&self, issued: SimTime) -> SimTime {
        if self.deadline_us == 0 {
            SimTime::MAX
        } else {
            issued.saturating_add(self.deadline_us)
        }
    }

    /// The backoff before retry number `retries_done + 1`: exponential from
    /// the base, capped.
    pub fn backoff_us(&self, retries_done: u32) -> u64 {
        let doubled = self
            .base_backoff_us
            .saturating_mul(1u64 << retries_done.min(32));
        doubled.min(self.max_backoff_us)
    }

    /// Decide what to do about a failed attempt: `retries_done` retries
    /// have already been spent on this phase, the failure surfaced at
    /// `now`, and the operation dies at `deadline`. Jitter (up to half the
    /// backoff) draws from `rng` *only* on the retry path, so give-ups —
    /// including every decision a [`RetryPolicy::none`] policy makes —
    /// leave the RNG stream untouched.
    pub fn on_error(
        &self,
        error: OpError,
        retries_done: u32,
        now: SimTime,
        deadline: SimTime,
        rng: &mut SimRng,
    ) -> RetryDecision {
        if !error.is_retryable() {
            return RetryDecision::GiveUp(GiveUpReason::Terminal);
        }
        if retries_done + 1 >= self.max_attempts {
            return RetryDecision::GiveUp(GiveUpReason::AttemptsExhausted);
        }
        if now >= deadline {
            return RetryDecision::GiveUp(GiveUpReason::DeadlineExceeded);
        }
        let backoff = self.backoff_us(retries_done);
        let jitter = if backoff == 0 {
            0
        } else {
            rng.below(backoff / 2 + 1)
        };
        let at = now.saturating_add(backoff + jitter);
        if at >= deadline {
            // The backoff schedule outruns the budget: surface one error
            // now rather than parking the thread past its deadline.
            return RetryDecision::GiveUp(GiveUpReason::DeadlineExceeded);
        }
        RetryDecision::RetryAt(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_policy_gives_up_without_touching_the_rng() {
        let p = RetryPolicy::none();
        let mut rng = SimRng::new(7);
        let mut probe = SimRng::new(7);
        let d = p.on_error(OpError::Timeout, 0, 100, SimTime::MAX, &mut rng);
        assert_eq!(d, RetryDecision::GiveUp(GiveUpReason::AttemptsExhausted));
        // The stream is untouched: the next draw matches a fresh clone's.
        assert_eq!(rng.below(1 << 30), probe.below(1 << 30));
    }

    #[test]
    fn terminal_errors_never_retry() {
        let p = RetryPolicy::retrying(5, 1_000, 0);
        let mut rng = SimRng::new(1);
        let d = p.on_error(OpError::Deadline, 0, 0, SimTime::MAX, &mut rng);
        assert_eq!(d, RetryDecision::GiveUp(GiveUpReason::Terminal));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy::retrying(10, 100, 0);
        assert_eq!(p.backoff_us(0), 100);
        assert_eq!(p.backoff_us(1), 200);
        assert_eq!(p.backoff_us(2), 400);
        assert_eq!(p.backoff_us(4), 1_600);
        assert_eq!(p.backoff_us(20), 1_600, "capped at 16x base");
    }

    #[test]
    fn retry_lands_between_backoff_and_backoff_plus_jitter() {
        let p = RetryPolicy::retrying(3, 1_000, 0);
        let mut rng = SimRng::new(3);
        match p.on_error(OpError::Unavailable, 0, 5_000, SimTime::MAX, &mut rng) {
            RetryDecision::RetryAt(at) => {
                assert!((6_000..=6_500).contains(&at), "at={at}");
            }
            other => panic!("expected retry, got {other:?}"),
        }
    }

    #[test]
    fn attempts_budget_is_enforced() {
        let p = RetryPolicy::retrying(3, 10, 0);
        let mut rng = SimRng::new(1);
        assert!(matches!(
            p.on_error(OpError::Timeout, 1, 0, SimTime::MAX, &mut rng),
            RetryDecision::RetryAt(_)
        ));
        assert_eq!(
            p.on_error(OpError::Timeout, 2, 0, SimTime::MAX, &mut rng),
            RetryDecision::GiveUp(GiveUpReason::AttemptsExhausted)
        );
    }

    #[test]
    fn backoff_past_the_deadline_gives_up_immediately() {
        let p = RetryPolicy::retrying(10, 1_000, 0);
        let mut rng = SimRng::new(1);
        // now=900, deadline=1000: even a zero-jitter retry at 1900 is late.
        assert_eq!(
            p.on_error(OpError::Timeout, 0, 900, 1_000, &mut rng),
            RetryDecision::GiveUp(GiveUpReason::DeadlineExceeded)
        );
        // Already past the deadline: same verdict, no jitter drawn.
        assert_eq!(
            p.on_error(OpError::Timeout, 0, 1_500, 1_000, &mut rng),
            RetryDecision::GiveUp(GiveUpReason::DeadlineExceeded)
        );
    }

    #[test]
    fn deadline_at_handles_unbounded_and_bounded() {
        assert_eq!(RetryPolicy::none().deadline_at(500), SimTime::MAX);
        let p = RetryPolicy::retrying(2, 10, 2_000);
        assert_eq!(p.deadline_at(500), 2_500);
    }

    #[test]
    fn hedging_is_opt_in() {
        assert!(!RetryPolicy::retrying(4, 100, 0).hedges());
        assert!(RetryPolicy::retrying(4, 100, 0).with_hedge(750).hedges());
    }

    #[test]
    fn decisions_are_deterministic_for_a_fixed_seed() {
        let p = RetryPolicy::retrying(5, 500, 0);
        let run = || {
            let mut rng = SimRng::new(99);
            (0..4)
                .map(|r| p.on_error(OpError::Timeout, r, 10_000, SimTime::MAX, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
