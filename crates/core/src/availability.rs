//! Figure 5: availability under failure — the resilience-layer experiment.
//!
//! Fig. 4 traces how each store degrades around a crash when the client is
//! fair-weather: one attempt, every failure surfaced. Real clients are not:
//! they retry transient errors with backoff, bound each operation with a
//! deadline budget, and hedge tail reads. This experiment reruns the Fig. 4
//! crash/recover plan under three client policies — `none`, `retry`, and
//! `retry+hedge` — and reports what the *application* actually experiences:
//! per-window goodput split into first-try and retried successes, the
//! client-visible error rate, and the attempts-per-op cost the resilience
//! layer pays for that availability.
//!
//! The expected shape (the paper's §6 future-work question, answered): a
//! Cassandra-analog client at CL=ONE with retries sees essentially *no*
//! outage — the coordinator skips the dead replica, stragglers retry onto
//! live nodes, and errors stay at zero through the crash window. The
//! HBase analog cannot be saved by retries alone: requests to the victim's
//! regions have nowhere else to go until failover, so its visible dip is
//! bounded below by the detection window plus the backoff ladder.

use faults::FaultPlan;
use simkit::NodeId;
use ycsb::{ResilienceCounters, TimelineWindow, WorkloadSpec};

use crate::consistency::PAPER_LEVELS;
use crate::driver::{self, DriverConfig};
use crate::failure::HSTORE_CL;
use crate::report::{fmt_ops, Table};
use crate::resilience::RetryPolicy;
use crate::setup::{build_cstore_with, build_hstore_with, Scale, StoreKind};
use crate::sweep::{BasePool, Sweep, Telemetry};

/// The three client policies every (store, CL) pair runs under.
pub const POLICY_NAMES: [&str; 3] = ["none", "retry", "retry+hedge"];

/// Configuration of the Fig. 5 experiment. The cluster and fault knobs
/// mirror [`crate::failure::FailureConfig`] at a single replication
/// factor; the new axis is the retry policy.
#[derive(Debug, Clone)]
pub struct AvailabilityConfig {
    /// Record/cache scale.
    pub scale: Scale,
    /// Replication factor (one value: the policy axis replaces the RF
    /// sweep).
    pub rf: u32,
    /// Client threads.
    pub threads: usize,
    /// Cluster-wide target throughput, constant-rate.
    pub target_ops_per_sec: f64,
    /// Warm-up completions.
    pub warmup_ops: u64,
    /// Measured completions.
    pub measure_ops: u64,
    /// Virtual time at which the victim crashes, µs from sim start.
    pub crash_at_us: u64,
    /// Virtual time at which the victim comes back, µs from sim start.
    pub recover_at_us: u64,
    /// Timeline bucket width, µs.
    pub window_us: u64,
    /// Client RPC timeout applied to both stores.
    pub rpc_timeout_us: u64,
    /// HBase-analog failure-detection window before region failover.
    pub failover_delay_us: u64,
    /// The node that crashes.
    pub victim: NodeId,
    /// The workload under which the failure happens.
    pub workload: WorkloadSpec,
    /// The retrying policy (the `retry` cells); its backoff ladder should
    /// outlast the outage so a patient client rides through.
    pub retry: RetryPolicy,
    /// Hedge delay added for the `retry+hedge` cells, µs — a p99-ish value
    /// so hedges fire on stragglers, not the common case.
    pub hedge_after_us: u64,
    /// Seed.
    pub seed: u64,
}

impl Default for AvailabilityConfig {
    fn default() -> Self {
        Self {
            scale: Scale::stress(),
            rf: 3,
            threads: 48,
            target_ops_per_sec: 3_000.0,
            warmup_ops: 2_000,
            measure_ops: 40_000,
            crash_at_us: 4_000_000,
            recover_at_us: 9_000_000,
            window_us: 250_000,
            rpc_timeout_us: 250_000,
            failover_delay_us: 2_000_000,
            victim: NodeId(0),
            workload: WorkloadSpec::read_update(),
            // Eight attempts from a 50 ms base: the cumulative backoff
            // (50+100+...+800, capped at 16x) outlasts the 2 s failover
            // detection window, under a 5 s per-op budget.
            retry: RetryPolicy::retrying(8, 50_000, 5_000_000),
            // Just past the healthy read p99 (~2 ms), so hedges fire on
            // the straggler tail rather than on every read.
            hedge_after_us: 2_500,
            seed: 42,
        }
    }
}

impl AvailabilityConfig {
    /// A fast variant for tests and smoke runs.
    pub fn quick() -> Self {
        Self {
            scale: Scale::tiny(),
            threads: 16,
            // Higher rate than the Fig. 4 smoke so several operations are
            // in flight at the crash instant — the transient the resilience
            // layer exists to absorb.
            target_ops_per_sec: 5_000.0,
            warmup_ops: 800,
            measure_ops: 14_000,
            crash_at_us: 900_000,
            recover_at_us: 1_800_000,
            window_us: 150_000,
            // Tighter than the Fig. 4 smoke (120 ms): the four survivors
            // brown out under the redirected load, and a client timeout
            // inside the fault-phase queueing tail is exactly the
            // transient a resilient client should absorb.
            rpc_timeout_us: 60_000,
            failover_delay_us: 300_000,
            // 15 ms base: cumulative backoff crosses the 300 ms failover
            // window after five retries, within a 1.5 s budget.
            retry: RetryPolicy::retrying(8, 15_000, 1_500_000),
            hedge_after_us: 5_000,
            ..Self::default()
        }
    }

    /// The three policy cells: fair-weather, retrying, retrying + hedged.
    pub fn policies(&self) -> [(&'static str, RetryPolicy); 3] {
        [
            (POLICY_NAMES[0], RetryPolicy::none()),
            (POLICY_NAMES[1], self.retry),
            (POLICY_NAMES[2], self.retry.with_hedge(self.hedge_after_us)),
        ]
    }
}

/// One (store, CL, policy) availability timeline with its phase summary.
#[derive(Debug, Clone)]
pub struct AvailabilityCell {
    /// Which store.
    pub store: StoreKind,
    /// Consistency strategy name ([`HSTORE_CL`] for the HBase analog).
    pub cl: &'static str,
    /// Retry-policy name (one of [`POLICY_NAMES`]).
    pub policy: &'static str,
    /// Mean throughput over full windows before the crash, ops/s.
    pub pre_tput: f64,
    /// Mean goodput (successful ops/s) inside the crash window.
    pub fault_goodput: f64,
    /// Of the fault-phase goodput, the first-try share, ops/s: what the
    /// client got without the resilience layer's help.
    pub fault_first_try: f64,
    /// Client-visible errors inside the crash window.
    pub fault_errors: u64,
    /// Mean store attempts per settled op inside the crash window (1.0 =
    /// no retry/hedge traffic).
    pub fault_attempts_per_op: f64,
    /// Worst per-window p99 latency inside the crash window, µs.
    pub fault_p99_us: u64,
    /// Mean throughput after recovery settles, ops/s.
    pub post_tput: f64,
    /// Whole-run resilience accounting.
    pub resilience: ResilienceCounters,
    /// Operations still unsettled at run end (must be 0: no token leaks).
    pub unsettled_ops: u64,
    /// The full per-window timeline.
    pub windows: Vec<TimelineWindow>,
}

/// The full Fig. 5 result.
#[derive(Debug, Clone)]
pub struct AvailabilityResult {
    /// All measured cells.
    pub cells: Vec<AvailabilityCell>,
    /// Crash time, µs (for rendering).
    pub crash_at_us: u64,
    /// Recovery time, µs (for rendering).
    pub recover_at_us: u64,
    /// Workload name (for rendering).
    pub workload: String,
    /// What the sweep cost.
    pub telemetry: Telemetry,
}

impl AvailabilityResult {
    /// The cell for a specific point.
    pub fn cell(&self, store: StoreKind, cl: &str, policy: &str) -> Option<&AvailabilityCell> {
        self.cells
            .iter()
            .find(|c| c.store == store && c.cl == cl && c.policy == policy)
    }

    /// Render the phase-summary table — one row per (store, CL, policy)
    /// with pre-fault throughput, fault-phase goodput split into first-try
    /// and total, the error count, the attempts-per-op cost, the worst
    /// fault-window p99, and post-recovery throughput.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            &format!(
                "Fig. 5 — availability under failure: crash t={:.1}s, recover t={:.1}s ({})",
                self.crash_at_us as f64 / 1e6,
                self.recover_at_us as f64 / 1e6,
                self.workload,
            ),
            &[
                "store",
                "cl",
                "policy",
                "pre tput",
                "fault goodput",
                "first-try",
                "fault errors",
                "att/op",
                "fault p99",
                "post tput",
            ],
        );
        for c in &self.cells {
            t.row(vec![
                c.store.short().into(),
                c.cl.into(),
                c.policy.into(),
                fmt_ops(c.pre_tput),
                fmt_ops(c.fault_goodput),
                fmt_ops(c.fault_first_try),
                c.fault_errors.to_string(),
                format!("{:.2}", c.fault_attempts_per_op),
                format!("{}us", c.fault_p99_us),
                fmt_ops(c.post_tput),
            ]);
        }
        t.render()
    }

    /// CSV table: one row per timeline window per cell.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "fig5_availability",
            &[
                "store",
                "cl",
                "policy",
                "window_start_us",
                "ops",
                "first_try_ops",
                "retried_ops",
                "ops_per_sec",
                "errors",
                "attempts",
                "attempts_per_op",
                "p99_us",
            ],
        );
        for c in &self.cells {
            for w in &c.windows {
                t.row(vec![
                    c.store.short().into(),
                    c.cl.into(),
                    c.policy.into(),
                    w.start_us.to_string(),
                    w.ops.to_string(),
                    w.first_try_ops().to_string(),
                    w.retried_ops.to_string(),
                    format!("{:.1}", w.ops_per_sec),
                    w.errors.to_string(),
                    w.attempts.to_string(),
                    format!("{:.2}", w.attempts_per_op()),
                    w.p99_us.to_string(),
                ]);
            }
        }
        t
    }
}

/// Fault-phase aggregates computed from one timeline (Fig. 5 needs the
/// goodput split and attempt cost on top of Fig. 4's throughput phases).
fn summarize(
    windows: &[TimelineWindow],
    crash_at: u64,
    recover_at: u64,
    window_us: u64,
) -> (f64, f64, f64, u64, f64, u64, f64) {
    let mean = |ws: &[&TimelineWindow], f: &dyn Fn(&TimelineWindow) -> f64| -> f64 {
        if ws.is_empty() {
            0.0
        } else {
            ws.iter().map(|w| f(w)).sum::<f64>() / ws.len() as f64
        }
    };
    let pre_all: Vec<&TimelineWindow> = windows.iter().filter(|w| w.end_us <= crash_at).collect();
    // Skip the thread-stagger ramp window when more than one qualifies.
    let pre = if pre_all.len() > 1 {
        &pre_all[1..]
    } else {
        &pre_all[..]
    };
    let fault: Vec<&TimelineWindow> = windows
        .iter()
        .filter(|w| w.start_us >= crash_at && w.start_us < recover_at)
        .collect();
    let last_start = windows.last().map_or(0, |w| w.start_us);
    let post: Vec<&TimelineWindow> = windows
        .iter()
        .filter(|w| w.start_us >= recover_at + window_us && w.start_us < last_start)
        .collect();
    let secs_per_window = window_us as f64 / 1_000_000.0;
    let fault_errors: u64 = fault.iter().map(|w| w.errors).sum();
    let fault_settled: u64 = fault.iter().map(|w| w.ops + w.errors).sum();
    let fault_attempts: u64 = fault.iter().map(|w| w.attempts).sum();
    (
        mean(pre, &|w| w.ops_per_sec),
        mean(&fault, &|w| w.ops_per_sec),
        mean(&fault, &|w| w.first_try_ops() as f64 / secs_per_window),
        fault_errors,
        if fault_settled == 0 {
            0.0
        } else {
            fault_attempts as f64 / fault_settled as f64
        },
        fault.iter().map(|w| w.p99_us).max().unwrap_or(0),
        mean(&post, &|w| w.ops_per_sec),
    )
}

/// Run the full Fig. 5 experiment through the sweep engine.
pub fn run_availability(cfg: &AvailabilityConfig) -> AvailabilityResult {
    run_availability_with(cfg, &Sweep::from_env())
}

/// [`run_availability`] on a caller-configured engine.
pub fn run_availability_with(cfg: &AvailabilityConfig, sweep: &Sweep) -> AvailabilityResult {
    // One cell per (store, consistency level, policy). The HBase analog
    // has its single implicit level; the Cassandra analog sweeps the
    // paper's three. Policies share the loaded base per (store, level).
    let specs: Vec<(StoreKind, usize, usize)> = (0..POLICY_NAMES.len())
        .flat_map(|p| {
            std::iter::once((StoreKind::HStore, 0, p))
                .chain((0..PAPER_LEVELS.len()).map(move |l| (StoreKind::CStore, l, p)))
        })
        .collect();
    let hpool: BasePool<u32, hstore::Cluster> = BasePool::new(std::iter::once(cfg.rf));
    let cpool: BasePool<usize, cstore::Cluster> = BasePool::new(0..PAPER_LEVELS.len());
    let policies = cfg.policies();

    let outcome = sweep.run(cfg.seed, &specs, |ctx, &(store, l, p)| {
        let (policy, retry) = policies[p];
        let dcfg = DriverConfig {
            workload: cfg.workload.clone(),
            threads: cfg.threads,
            target_ops_per_sec: cfg.target_ops_per_sec,
            records: cfg.scale.records,
            value_len: cfg.scale.value_len,
            warmup_ops: cfg.warmup_ops,
            measure_ops: cfg.measure_ops,
            seed: ctx.seed,
            faults: FaultPlan::new().crash_window(cfg.victim, cfg.crash_at_us, cfg.recover_at_us),
            timeline_window_us: cfg.window_us,
            retry,
            trace: obs::TraceConfig::off(),
            audit: audit::AuditConfig::off(),
            arrival: crate::driver::ArrivalMode::ClosedLoop,
        };
        let (cl, out) = match store {
            StoreKind::HStore => {
                let mut snapshot = hpool
                    .get_or_load(&cfg.rf, || {
                        let mut base = build_hstore_with(&cfg.scale, cfg.rf, |c| {
                            c.rpc_timeout_us = cfg.rpc_timeout_us;
                            c.failover_delay_us = cfg.failover_delay_us;
                        });
                        driver::load(&mut base, cfg.scale.records, cfg.scale.value_len, cfg.seed);
                        base
                    })
                    .snapshot();
                (HSTORE_CL, driver::run(&mut snapshot, &dcfg))
            }
            StoreKind::CStore => {
                let level = PAPER_LEVELS[l];
                let mut snapshot = cpool
                    .get_or_load(&l, || {
                        let mut base =
                            build_cstore_with(&cfg.scale, cfg.rf, level.read, level.write, |c| {
                                c.rpc_timeout_us = cfg.rpc_timeout_us;
                            });
                        driver::load(&mut base, cfg.scale.records, cfg.scale.value_len, cfg.seed);
                        base
                    })
                    .snapshot();
                (level.name, driver::run(&mut snapshot, &dcfg))
            }
        };
        let windows = out
            .metrics
            .timeline()
            .map(|t| t.windows())
            .unwrap_or_default();
        let (pre, goodput, first_try, errors, att_per_op, p99, post) =
            summarize(&windows, cfg.crash_at_us, cfg.recover_at_us, cfg.window_us);
        AvailabilityCell {
            store,
            cl,
            policy,
            pre_tput: pre,
            fault_goodput: goodput,
            fault_first_try: first_try,
            fault_errors: errors,
            fault_attempts_per_op: att_per_op,
            fault_p99_us: p99,
            post_tput: post,
            resilience: *out.metrics.resilience(),
            unsettled_ops: out.unsettled_ops,
            windows,
        }
    });

    let mut telemetry = outcome.telemetry;
    telemetry.record_pool(&hpool);
    telemetry.record_pool(&cpool);
    let mut cells = outcome.results;
    cells.sort_by(|a, b| (a.store.short(), a.cl, a.policy).cmp(&(b.store.short(), b.cl, b.policy)));
    AvailabilityResult {
        cells,
        crash_at_us: cfg.crash_at_us,
        recover_at_us: cfg.recover_at_us,
        workload: cfg.workload.name.clone(),
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_availability_produces_all_cells_and_leaks_nothing() {
        let cfg = AvailabilityConfig::quick();
        let res = run_availability(&cfg);
        // (1 hstore level + 3 cstore levels) × 3 policies.
        assert_eq!(res.cells.len(), 12);
        for c in &res.cells {
            assert!(!c.windows.is_empty());
            assert!(c.pre_tput > 0.0, "{}/{}/{}", c.store, c.cl, c.policy);
            assert_eq!(
                c.unsettled_ops, 0,
                "token leak: {}/{}/{}",
                c.store, c.cl, c.policy
            );
            match c.policy {
                "none" => {
                    assert_eq!(c.resilience.retries, 0);
                    assert_eq!(c.resilience.hedges, 0);
                    assert_eq!(c.resilience.retried_ok, 0);
                }
                "retry" => assert_eq!(c.resilience.hedges, 0),
                _ => {}
            }
        }
        let rendered = res.render();
        assert!(rendered.contains("Fig. 5"));
        assert!(rendered.contains("retry+hedge"));
        let total_windows: usize = res.cells.iter().map(|c| c.windows.len()).sum();
        assert_eq!(res.table().rows.len(), total_windows);
    }

    #[test]
    fn retries_mask_the_outage_at_cl_one() {
        let cfg = AvailabilityConfig::quick();
        let res = run_availability(&cfg);
        // The headline claim: a CL=ONE client that retries sees no outage
        // — the coordinator skips the dead replica and stragglers land on
        // live nodes — while the fair-weather client eats an error spike.
        let naive = res.cell(StoreKind::CStore, "ONE", "none").expect("cell");
        let patient = res.cell(StoreKind::CStore, "ONE", "retry").expect("cell");
        assert!(
            naive.fault_errors > 0,
            "the no-retry client should see the crash: {naive:?}"
        );
        assert_eq!(
            patient.fault_errors, 0,
            "retries should absorb every transient error at CL=ONE"
        );
        assert!(
            patient.resilience.retries > 0,
            "the crash must actually exercise the retry path"
        );
        // The retry cells pay for availability with extra attempts.
        assert!(patient.fault_attempts_per_op >= 1.0);
    }

    #[test]
    fn hedging_adds_speculative_attempts_without_losing_ops() {
        let cfg = AvailabilityConfig::quick();
        let res = run_availability(&cfg);
        let hedged = res
            .cell(StoreKind::CStore, "QUORUM", "retry+hedge")
            .expect("cell");
        assert!(
            hedged.resilience.hedges > 0,
            "a crash window plus a p99-ish hedge delay must trigger hedges"
        );
        // A hedged op settles off one attempt and drains the other as a
        // cancellation — a *winning* hedge therefore produces both a win
        // and a cancelled primary. Each count is bounded by hedges issued.
        assert!(hedged.resilience.hedge_wins <= hedged.resilience.hedges);
        assert!(hedged.resilience.hedge_cancelled <= hedged.resilience.hedges);
        assert_eq!(hedged.unsettled_ops, 0);
    }
}
