//! Figure 1: the micro benchmark for replication.
//!
//! "In this benchmark, we keep the load of the testbed in unsaturated state
//! by limiting the number of concurrence requests, and conduct six rounds of
//! testing. In each round, the replication factor is increased by one, and
//! the update/read/insert/scan test is run one after another."

use storage::OpKind;
use ycsb::WorkloadSpec;

use crate::driver::{self, DriverConfig};
use crate::report::{fmt_us, Table};
use crate::resilience::RetryPolicy;
use crate::setup::{build_cstore, build_hstore, Scale, StoreKind};
use crate::sweep::{BasePool, Sweep, Telemetry};
use cstore::Consistency;

/// The micro-test round order used by the paper.
pub const MICRO_OPS: [OpKind; 4] = [OpKind::Update, OpKind::Read, OpKind::Insert, OpKind::Scan];

/// Configuration of the Fig. 1 experiment.
#[derive(Debug, Clone)]
pub struct MicroConfig {
    /// Record/cache scale.
    pub scale: Scale,
    /// Replication factors to sweep.
    pub rfs: Vec<u32>,
    /// Client threads (kept modest: the paper limits concurrency).
    pub threads: usize,
    /// Cluster-wide target throughput keeping the testbed unsaturated.
    pub target_ops_per_sec: f64,
    /// Warm-up completions per round.
    pub warmup_ops: u64,
    /// Measured completions per round.
    pub measure_ops: u64,
    /// Seed.
    pub seed: u64,
}

impl Default for MicroConfig {
    fn default() -> Self {
        Self {
            scale: Scale::micro(),
            rfs: (1..=6).collect(),
            threads: 48,
            target_ops_per_sec: 1_500.0,
            warmup_ops: 1_000,
            measure_ops: 8_000,
            seed: 42,
        }
    }
}

impl MicroConfig {
    /// A fast variant for tests and smoke runs.
    pub fn quick() -> Self {
        Self {
            scale: Scale::tiny(),
            rfs: vec![1, 3],
            threads: 4,
            target_ops_per_sec: 400.0,
            warmup_ops: 100,
            measure_ops: 500,
            seed: 42,
        }
    }
}

/// One measured point of Fig. 1.
#[derive(Debug, Clone)]
pub struct MicroCell {
    /// Which store.
    pub store: StoreKind,
    /// Replication factor.
    pub rf: u32,
    /// The atomic operation of the round.
    pub op: OpKind,
    /// Mean latency, µs.
    pub mean_us: f64,
    /// 95th-percentile latency, µs.
    pub p95_us: u64,
    /// Runtime throughput, ops/s.
    pub throughput: f64,
}

/// The full Fig. 1 result.
#[derive(Debug, Clone)]
pub struct MicroResult {
    /// All measured cells.
    pub cells: Vec<MicroCell>,
    /// What the sweep cost (wall time, utilization, base loads).
    pub telemetry: Telemetry,
}

impl MicroResult {
    /// The cell for a specific point.
    pub fn cell(&self, store: StoreKind, rf: u32, op: OpKind) -> Option<&MicroCell> {
        self.cells
            .iter()
            .find(|c| c.store == store && c.rf == rf && c.op == op)
    }

    /// Mean-latency series for `(store, op)` ordered by RF.
    pub fn series(&self, store: StoreKind, op: OpKind) -> Vec<(u32, f64)> {
        let mut v: Vec<(u32, f64)> = self
            .cells
            .iter()
            .filter(|c| c.store == store && c.op == op)
            .map(|c| (c.rf, c.mean_us))
            .collect();
        v.sort_by_key(|&(rf, _)| rf);
        v
    }

    /// Render one table per store: RF rows × operation columns (mean
    /// latency), the shape of the paper's Fig. 1.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for store in [StoreKind::HStore, StoreKind::CStore] {
            let mut t = Table::new(
                &format!(
                    "Fig. 1 — micro benchmark for replication: {}",
                    store.label()
                ),
                &["rf", "UPDATE mean", "READ mean", "INSERT mean", "SCAN mean"],
            );
            let mut rfs: Vec<u32> = self
                .cells
                .iter()
                .filter(|c| c.store == store)
                .map(|c| c.rf)
                .collect();
            rfs.sort_unstable();
            rfs.dedup();
            for rf in rfs {
                let cell = |op| {
                    self.cell(store, rf, op)
                        .map_or("-".to_owned(), |c| fmt_us(c.mean_us))
                };
                t.row(vec![
                    rf.to_string(),
                    cell(OpKind::Update),
                    cell(OpKind::Read),
                    cell(OpKind::Insert),
                    cell(OpKind::Scan),
                ]);
            }
            out.push_str(&t.render());
            out.push('\n');
        }
        out
    }

    /// CSV table of every cell.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "fig1_micro_replication",
            &["store", "rf", "op", "mean_us", "p95_us", "throughput"],
        );
        for c in &self.cells {
            t.row(vec![
                c.store.short().into(),
                c.rf.to_string(),
                c.op.label().into(),
                format!("{:.1}", c.mean_us),
                c.p95_us.to_string(),
                format!("{:.1}", c.throughput),
            ]);
        }
        t
    }
}

fn micro_driver_cfg(cfg: &MicroConfig, op: OpKind, seed: u64) -> DriverConfig {
    DriverConfig {
        workload: WorkloadSpec::micro(op),
        threads: cfg.threads,
        target_ops_per_sec: cfg.target_ops_per_sec,
        records: cfg.scale.records,
        value_len: cfg.scale.value_len,
        warmup_ops: cfg.warmup_ops,
        measure_ops: cfg.measure_ops,
        seed,
        faults: Default::default(),
        timeline_window_us: 0,
        retry: RetryPolicy::none(),
        trace: obs::TraceConfig::off(),
        audit: audit::AuditConfig::off(),
        arrival: crate::driver::ArrivalMode::ClosedLoop,
    }
}

/// Run the full Fig. 1 experiment through the sweep engine.
pub fn run_micro(cfg: &MicroConfig) -> MicroResult {
    run_micro_with(cfg, &Sweep::from_env())
}

/// [`run_micro`] on a caller-configured engine (the determinism tests run
/// the same grid serially and in parallel).
pub fn run_micro_with(cfg: &MicroConfig, sweep: &Sweep) -> MicroResult {
    // One cell per (store, RF, operation round); each (store, RF) base
    // state is bulk-loaded once and snapshot-cloned per round.
    let specs: Vec<(StoreKind, u32, OpKind)> = cfg
        .rfs
        .iter()
        .flat_map(|&rf| {
            [StoreKind::HStore, StoreKind::CStore]
                .into_iter()
                .flat_map(move |store| MICRO_OPS.iter().map(move |&op| (store, rf, op)))
        })
        .collect();
    let hpool: BasePool<u32, hstore::Cluster> = BasePool::new(cfg.rfs.iter().copied());
    let cpool: BasePool<u32, cstore::Cluster> = BasePool::new(cfg.rfs.iter().copied());

    let outcome = sweep.run(cfg.seed, &specs, |ctx, &(store, rf, op)| {
        let dcfg = micro_driver_cfg(cfg, op, ctx.seed);
        let out = match store {
            StoreKind::HStore => {
                let mut snapshot = hpool
                    .get_or_load(&rf, || {
                        let mut base = build_hstore(&cfg.scale, rf);
                        driver::load(&mut base, cfg.scale.records, cfg.scale.value_len, cfg.seed);
                        base
                    })
                    .snapshot();
                driver::run(&mut snapshot, &dcfg)
            }
            StoreKind::CStore => {
                let mut snapshot = cpool
                    .get_or_load(&rf, || {
                        let mut base =
                            build_cstore(&cfg.scale, rf, Consistency::One, Consistency::One);
                        driver::load(&mut base, cfg.scale.records, cfg.scale.value_len, cfg.seed);
                        base
                    })
                    .snapshot();
                driver::run(&mut snapshot, &dcfg)
            }
        };
        let hist = out.metrics.for_op(op).cloned().unwrap_or_default();
        MicroCell {
            store,
            rf,
            op,
            mean_us: hist.mean(),
            p95_us: hist.p95(),
            throughput: out.throughput,
        }
    });

    let mut telemetry = outcome.telemetry;
    telemetry.record_pool(&hpool);
    telemetry.record_pool(&cpool);
    let mut cells = outcome.results;
    cells.sort_by_key(|c| (c.store.short(), c.rf, c.op));
    MicroResult { cells, telemetry }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_micro_produces_all_cells() {
        let cfg = MicroConfig::quick();
        let res = run_micro(&cfg);
        // 2 stores × 2 RFs × 4 ops.
        assert_eq!(res.cells.len(), 16);
        for c in &res.cells {
            assert!(c.mean_us > 0.0, "{c:?} has zero latency");
            assert!(c.throughput > 0.0);
        }
        let rendered = res.render();
        assert!(rendered.contains("Fig. 1"));
        assert!(rendered.contains("hstore"));
        let series = res.series(StoreKind::CStore, OpKind::Read);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].0, 1);
        // Each of the 4 base states (2 stores × 2 RFs) loaded exactly once.
        assert_eq!(res.telemetry.base_loads, 4);
        assert_eq!(res.telemetry.base_states, 4);
    }
}
