//! Heap vs calendar event queue under the hold model: a fixed pending
//! population, pop-one/push-one with a near-future increment — the access
//! pattern a discrete-event simulation actually generates. The calendar
//! queue's O(1) bucket hashing should pull ahead as the population grows;
//! the heap pays O(log n) compares *and* payload moves per operation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use simkit::{EventQueue, QueueKind};

/// Payload sized like the cluster models' fat event enums.
type FatEvent = [u64; 12];

/// Deterministic splitmix64 increment stream, identical across backends.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn filled(kind: QueueKind, pending: usize) -> EventQueue<FatEvent> {
    let mut q = EventQueue::with_kind(kind);
    let mut s = 1u64;
    for i in 0..pending as u64 {
        q.push(splitmix(&mut s) % 1_000_000, [i; 12]);
    }
    q
}

fn bench_churn(c: &mut Criterion) {
    for pending in [1_000usize, 100_000, 1_000_000] {
        for (name, kind) in [("heap", QueueKind::Heap), ("calendar", QueueKind::Calendar)] {
            let mut q = filled(kind, pending);
            let mut s = 2u64;
            c.bench_function(&format!("queue_churn/{name}/pending_{pending}"), |b| {
                b.iter(|| {
                    let (t, ev) = q.pop().expect("population never drains");
                    q.push(t + 1 + splitmix(&mut s) % 512, ev);
                    black_box(t)
                });
            });
        }
    }
}

criterion_group!(benches, bench_churn);
criterion_main!(benches);
