//! Slab vs HashMap for per-operation coordinator state, modelled on the
//! dispatch path both cluster analogs run: a write arrives, its pending
//! context is created, three replica acks come back (two lookups and a
//! removal). The slab replaces hashing with an index + generation check
//! and recycles slots instead of re-allocating buckets.

use std::collections::HashMap;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use simkit::{OpKey, Slab};

/// A coordinator context shaped like the stores' `Pending` structs.
#[derive(Clone)]
struct Pending {
    token: u64,
    need: u32,
    acks: u32,
    payload: [u64; 8],
}

fn pending(token: u64) -> Pending {
    Pending {
        token,
        need: 2,
        acks: 0,
        payload: [token; 8],
    }
}

/// One simulated 3-replica write: insert, two mutating ack lookups (the
/// second reaches quorum), then removal on the settle path.
fn bench_dispatch(c: &mut Criterion) {
    c.bench_function("dispatch_alloc/hashmap/write_3_replicas", |b| {
        let mut map: HashMap<u64, Pending> = HashMap::new();
        let mut token = 0u64;
        b.iter(|| {
            token += 1;
            map.insert(token, pending(token));
            for _ in 0..2 {
                if let Some(p) = map.get_mut(&token) {
                    p.acks += 1;
                    if p.acks >= p.need {
                        break;
                    }
                }
            }
            let done = map.remove(&token);
            black_box(done.map(|p| p.payload[0]))
        });
    });

    c.bench_function("dispatch_alloc/slab/write_3_replicas", |b| {
        let mut slab: Slab<Pending> = Slab::new();
        let mut token = 0u64;
        b.iter(|| {
            token += 1;
            let key: OpKey = slab.insert(pending(token));
            for _ in 0..2 {
                if let Some(p) = slab.get_mut(key) {
                    p.acks += 1;
                    if p.acks >= p.need {
                        break;
                    }
                }
            }
            let done = slab.remove(key);
            black_box(done.map(|p| p.payload[0]))
        });
    });

    // The failure-heavy variant: many contexts in flight at once, acks
    // arriving out of order — closer to a saturated coordinator.
    c.bench_function("dispatch_alloc/hashmap/64_in_flight", |b| {
        let mut map: HashMap<u64, Pending> = HashMap::new();
        let mut token = 0u64;
        let mut live: Vec<u64> = Vec::with_capacity(64);
        b.iter(|| {
            while live.len() < 64 {
                token += 1;
                map.insert(token, pending(token));
                live.push(token);
            }
            let t = live.swap_remove((token as usize * 31) % live.len());
            let done = map.remove(&t);
            black_box(done.map(|p| p.token))
        });
    });

    c.bench_function("dispatch_alloc/slab/64_in_flight", |b| {
        let mut slab: Slab<Pending> = Slab::new();
        let mut token = 0u64;
        let mut live: Vec<OpKey> = Vec::with_capacity(64);
        b.iter(|| {
            while live.len() < 64 {
                token += 1;
                live.push(slab.insert(pending(token)));
            }
            let k = live.swap_remove((token as usize * 31) % live.len());
            let done = slab.remove(k);
            black_box(done.map(|p| p.token))
        });
    });
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
