//! The event queue: a bucketed calendar queue ordered by `(time, sequence)`,
//! with the original binary heap kept for differential testing.
//!
//! The sequence number makes dispatch order total and deterministic: two
//! events scheduled for the same instant fire in the order they were
//! scheduled, independent of container internals. Both implementations pop
//! the exact same `(time, seq)` sequence — [`CalendarQueue`] is verified
//! against [`HeapQueue`] by `tests/queue_equivalence.rs` — so swapping one
//! for the other cannot change any simulation result, only its wall-clock
//! cost.
//!
//! # Why a calendar queue
//!
//! A discrete-event simulation pops every event it pushes, in near-time
//! order. A binary heap pays `O(log n)` comparisons *and* `O(log n)`
//! whole-payload moves per operation (event payloads here are fat enums of
//! 50–150 bytes, so each sift level is a memcpy). The calendar queue
//! instead hashes each event to a time bucket in O(1); only the single
//! bucket at the cursor is kept sorted, and buckets hold a handful of
//! events each at realistic pending counts, so pushes are appends and pops
//! are pops-from-the-end almost always.
//!
//! Layout: a power-of-two ring of `BUCKETS` buckets, each `1 << shift`
//! microseconds wide, covering a rotating window of `BUCKETS << shift`
//! microseconds from the cursor. Events beyond the window land in a
//! far-future overflow lane (a min-heap on `(time, seq)`) and migrate into
//! the wheel when the window reaches them. Events inside the window go
//! straight to their bucket, unsorted; a bucket is sorted lazily when the
//! cursor reaches it, and same-bucket pushes after that point insert in
//! order (binary search).
//!
//! The bucket width adapts to event density, following Brown's classic
//! calendar-queue design: when the cursor bucket comes up fat the wheel
//! narrows (so pushes spread across many cheap unsorted buckets instead of
//! binary-inserting into one huge sorted one), and when the cursor keeps
//! crossing empty buckets it widens (so sparse schedules don't pay a long
//! walk per event). Rebuilds redistribute in O(pending) and are triggered
//! geometrically, so their cost amortizes away; they change only the
//! internal layout, never the `(time, seq)` pop order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Queue implementation selector, read from the `SIM_QUEUE` environment
/// variable: `heap` selects the reference [`HeapQueue`] (bisection escape
/// hatch), anything else (or unset) the [`CalendarQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// The bucketed calendar queue (default).
    Calendar,
    /// The reference binary heap.
    Heap,
}

impl QueueKind {
    /// The kind selected by the `SIM_QUEUE` environment variable.
    pub fn from_env() -> Self {
        match std::env::var("SIM_QUEUE") {
            Ok(v) if v.eq_ignore_ascii_case("heap") => Self::Heap,
            _ => Self::Calendar,
        }
    }
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the earliest event first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The original binary-heap event queue, kept as the differential-testing
/// reference and as the `SIM_QUEUE=heap` bisection escape hatch.
pub struct HeapQueue<E> {
    heap: BinaryHeap<Entry<E>>,
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
        }
    }

    /// Insert an event with its total-order key.
    #[inline]
    fn push(&mut self, time: SimTime, seq: u64, event: E) {
        self.heap.push(Entry { time, seq, event });
    }

    /// Remove and return the earliest entry.
    #[inline]
    fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Fire time of the earliest pending event, if any.
    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Initial log2 of the bucket width: 256 µs buckets, sized for the cluster
/// models' typical follow-up delays. The wheel adapts from here.
const INIT_SHIFT: u32 = 8;
/// Widest bucket the wheel will adapt to: 2^22 µs ≈ 4.2 s per bucket
/// (window ≈ 4.8 h), enough for fault plans and GC-pause cadences.
const MAX_SHIFT: u32 = 22;
/// Bucket count (power of two). At the initial width the window is
/// 4096 × 256 µs ≈ 1.05 s, which covers RPC timeouts; only multi-second
/// schedules (GC pause intervals, fault plans) take the overflow lane.
const BUCKETS: usize = 4096;
const BUCKET_MASK: u64 = (BUCKETS as u64) - 1;
/// A cursor bucket fatter than this at sort time triggers narrowing
/// (unless already at 1 µs buckets, where ties simply pile up).
const NARROW_LIMIT: usize = 64;
/// Target cursor-bucket population a narrow aims for.
const NARROW_TARGET: usize = 8;
/// This many consecutive empty-bucket advances trigger widening.
const WIDEN_LIMIT: u32 = 256;

/// A bucketed calendar queue (time wheel with a sorted-overflow far-future
/// lane) popping the exact `(time, seq)` total order of [`HeapQueue`].
pub struct CalendarQueue<E> {
    /// The ring of buckets. Bucket index of an in-window event is
    /// `(time >> shift) & BUCKET_MASK`.
    buckets: Vec<Vec<Entry<E>>>,
    /// Log2 of the current bucket width in µs (adaptive).
    shift: u32,
    /// Inclusive low edge of the cursor's bucket. Every queued in-wheel
    /// event has `time >= wheel_start` and `time < wheel_start + window`.
    wheel_start: SimTime,
    /// Events stored in wheel buckets.
    wheel_len: usize,
    /// True once the cursor bucket has been sorted (descending, so the
    /// earliest entry pops from the end). Pushes into the sorted cursor
    /// bucket insert in place to keep the invariant.
    cursor_sorted: bool,
    /// Consecutive empty-bucket cursor advances since the last pop; the
    /// widen trigger's counter.
    empty_steps: u32,
    /// Far-future lane: a min-heap on `(time, seq)` of events at or beyond
    /// `wheel_start + window`. An event migrates into the wheel when the
    /// window reaches it (at most once per wheel geometry).
    overflow: BinaryHeap<Entry<E>>,
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> CalendarQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        let mut buckets = Vec::with_capacity(BUCKETS);
        buckets.resize_with(BUCKETS, Vec::new);
        Self {
            buckets,
            shift: INIT_SHIFT,
            wheel_start: 0,
            wheel_len: 0,
            cursor_sorted: false,
            empty_steps: 0,
            overflow: BinaryHeap::new(),
        }
    }

    /// Current bucket width in µs.
    #[inline]
    fn width(&self) -> u64 {
        1 << self.shift
    }

    /// Exclusive high edge of the wheel window.
    #[inline]
    fn window_end(&self) -> SimTime {
        self.wheel_start + ((BUCKETS as u64) << self.shift)
    }

    #[inline]
    fn bucket_of(&self, time: SimTime) -> usize {
        ((time >> self.shift) & BUCKET_MASK) as usize
    }

    #[inline]
    fn cursor(&self) -> usize {
        self.bucket_of(self.wheel_start)
    }

    /// Re-key every wheel event into a new bucket geometry. O(pending);
    /// triggered geometrically, so the cost amortizes to O(1) per event.
    /// Pop order is untouched: only the layout changes.
    fn rebuild(&mut self, new_shift: u32) {
        let mut scratch: Vec<Entry<E>> = Vec::with_capacity(self.wheel_len);
        for b in &mut self.buckets {
            scratch.append(b);
        }
        self.shift = new_shift;
        // Align the anchor down to the new width; every wheel event's time
        // is >= wheel_start, so rounding down keeps that invariant.
        self.wheel_start &= !(self.width() - 1);
        self.wheel_len = 0;
        self.cursor_sorted = false;
        let end = self.window_end();
        // Narrowing can spill most of the wheel into the overflow lane in
        // one burst; reserving the exact count avoids the BinaryHeap's
        // doubling transient (old + new buffer live at once) while `scratch`
        // still holds every entry — that coincidence is what sets the
        // process RSS high-water mark at large pending populations.
        let spill = scratch.iter().filter(|e| e.time >= end).count();
        self.overflow.reserve(spill);
        for e in scratch {
            if e.time >= end {
                // Narrowing shrank the window below this event; it waits
                // in the overflow lane like any far-future event.
                self.overflow.push(e);
            } else {
                let idx = self.bucket_of(e.time);
                self.buckets[idx].push(e);
                self.wheel_len += 1;
            }
        }
        // Widening may have grown the window over overflow events.
        self.migrate_overflow();
    }

    /// Insert an event with its total-order key. `time` may be below
    /// `wheel_start` only before the first pop (the wheel re-anchors then).
    fn push(&mut self, time: SimTime, seq: u64, event: E) {
        if time >= self.window_end() || time < self.wheel_start {
            // Far future — or, before the first pop, behind the initial
            // anchor: both take the ordered overflow lane. Pops migrate
            // and re-anchor as needed.
            self.overflow.push(Entry { time, seq, event });
            return;
        }
        let idx = self.bucket_of(time);
        let cursor = self.cursor();
        let bucket = &mut self.buckets[idx];
        if self.cursor_sorted && idx == cursor {
            // The cursor bucket is kept sorted descending; insert in place.
            let pos = bucket.partition_point(|e| (e.time, e.seq) > (time, seq));
            bucket.insert(pos, Entry { time, seq, event });
        } else {
            bucket.push(Entry { time, seq, event });
        }
        self.wheel_len += 1;
    }

    /// Remove and return the earliest entry.
    fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            if self.wheel_len == 0 {
                // Wheel drained: fast-forward to the overflow minimum.
                let head = self.overflow.peek()?;
                let anchor = head.time & !(self.width() - 1);
                self.wheel_start = anchor;
                self.cursor_sorted = false;
                self.empty_steps = 0;
                self.migrate_overflow();
                continue;
            }
            let cursor = self.cursor();
            if self.buckets[cursor].is_empty() {
                // Advance one bucket; pull any overflow events the moving
                // window has just reached.
                self.wheel_start += self.width();
                self.cursor_sorted = false;
                self.empty_steps += 1;
                if self.empty_steps >= WIDEN_LIMIT && self.shift < MAX_SHIFT {
                    // The schedule is sparse at this width: widen so a pop
                    // costs a few bucket steps, not hundreds.
                    self.empty_steps = 0;
                    self.rebuild((self.shift + 2).min(MAX_SHIFT));
                    continue;
                }
                self.migrate_overflow();
                continue;
            }
            if !self.cursor_sorted {
                let len = self.buckets[cursor].len();
                if len > NARROW_LIMIT && self.shift > 0 {
                    // The schedule is dense at this width: narrow so this
                    // population spreads over ~len/NARROW_TARGET unsorted
                    // buckets instead of one huge sorted one. Same-instant
                    // ties cannot split, so the delta caps at shift 0.
                    let mut delta = 0;
                    while (len >> delta) > NARROW_TARGET && delta < self.shift {
                        delta += 1;
                    }
                    if delta > 0 {
                        self.rebuild(self.shift - delta);
                        continue;
                    }
                }
                // Sort descending so the earliest entry is at the end.
                // Buckets usually fill already ascending — same-tick events
                // arrive in seq order, migrations append in heap order — so
                // detect that case and reverse in O(len) instead.
                let bucket = &mut self.buckets[cursor];
                let ascending = bucket
                    .windows(2)
                    .all(|w| (w[0].time, w[0].seq) <= (w[1].time, w[1].seq));
                if ascending {
                    bucket.reverse();
                } else {
                    bucket.sort_unstable_by_key(|e| std::cmp::Reverse((e.time, e.seq)));
                }
                self.cursor_sorted = true;
            }
            let e = self.buckets[cursor].pop().expect("non-empty bucket");
            self.wheel_len -= 1;
            self.empty_steps = 0;
            return Some((e.time, e.event));
        }
    }

    /// Move overflow events that now fall inside the window into their
    /// buckets. Amortized O(1) per event over a run: each migrates once.
    fn migrate_overflow(&mut self) {
        let end = self.window_end();
        while let Some(head) = self.overflow.peek() {
            if head.time >= end {
                break;
            }
            let e = self.overflow.pop().expect("peeked");
            debug_assert!(e.time >= self.wheel_start);
            let idx = self.bucket_of(e.time);
            if self.cursor_sorted && idx == self.cursor() {
                let key = (e.time, e.seq);
                let pos = self.buckets[idx].partition_point(|x| (x.time, x.seq) > key);
                self.buckets[idx].insert(pos, e);
            } else {
                self.buckets[idx].push(e);
            }
            self.wheel_len += 1;
        }
    }

    /// Fire time of the earliest pending event, if any. (O(window scan) in
    /// the worst case; used by drivers for occasional peeks, not per-pop.)
    fn peek_time(&self) -> Option<SimTime> {
        let mut best: Option<(SimTime, u64)> = None;
        if self.wheel_len > 0 {
            let mut idx = self.cursor();
            let mut start = self.wheel_start;
            let end = self.window_end();
            while start < end {
                let b = &self.buckets[idx];
                if !b.is_empty() {
                    let m = b
                        .iter()
                        .map(|e| (e.time, e.seq))
                        .min()
                        .expect("non-empty bucket");
                    best = Some(m);
                    break;
                }
                idx = (idx + 1) & (BUCKET_MASK as usize);
                start += self.width();
            }
        }
        if let Some(h) = self.overflow.peek() {
            let key = (h.time, h.seq);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        best.map(|(t, _)| t)
    }

    /// Number of pending events.
    fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }
}

enum Impl<E> {
    Calendar(CalendarQueue<E>),
    Heap(HeapQueue<E>),
}

/// A time-ordered queue of simulation events.
///
/// Dispatch order is the total `(time, seq)` order in both backends; the
/// backend only changes wall-clock cost. [`EventQueue::new`] honours the
/// `SIM_QUEUE=heap` escape hatch for bisection.
pub struct EventQueue<E> {
    inner: Impl<E>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the backend selected by `SIM_QUEUE`
    /// (calendar unless `SIM_QUEUE=heap`).
    pub fn new() -> Self {
        Self::with_kind(QueueKind::from_env())
    }

    /// Create an empty queue with an explicit backend.
    pub fn with_kind(kind: QueueKind) -> Self {
        let inner = match kind {
            QueueKind::Calendar => Impl::Calendar(CalendarQueue::new()),
            QueueKind::Heap => Impl::Heap(HeapQueue::new()),
        };
        Self { inner, seq: 0 }
    }

    /// The backend this queue runs on.
    pub fn kind(&self) -> QueueKind {
        match self.inner {
            Impl::Calendar(_) => QueueKind::Calendar,
            Impl::Heap(_) => QueueKind::Heap,
        }
    }

    /// Schedule `event` to fire at absolute time `time`.
    #[inline]
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        match &mut self.inner {
            Impl::Calendar(q) => q.push(time, seq, event),
            Impl::Heap(q) => q.push(time, seq, event),
        }
    }

    /// Remove and return the earliest event, with its fire time.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match &mut self.inner {
            Impl::Calendar(q) => q.pop(),
            Impl::Heap(q) => q.pop(),
        }
    }

    /// Fire time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.inner {
            Impl::Calendar(q) => q.peek_time(),
            Impl::Heap(q) => q.peek_time(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.inner {
            Impl::Calendar(q) => q.len(),
            Impl::Heap(q) => q.len(),
        }
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both() -> [EventQueue<i32>; 2] {
        [
            EventQueue::with_kind(QueueKind::Calendar),
            EventQueue::with_kind(QueueKind::Heap),
        ]
    }

    #[test]
    fn pops_in_time_order() {
        for mut q in both() {
            q.push(30, 3);
            q.push(10, 1);
            q.push(20, 2);
            assert_eq!(q.pop(), Some((10, 1)));
            assert_eq!(q.pop(), Some((20, 2)));
            assert_eq!(q.pop(), Some((30, 3)));
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn ties_break_by_insertion_order() {
        for mut q in both() {
            for i in 0..100 {
                q.push(5, i);
            }
            for i in 0..100 {
                assert_eq!(q.pop(), Some((5, i)));
            }
        }
    }

    #[test]
    fn peek_does_not_remove() {
        for mut q in both() {
            q.push(7, 0);
            assert_eq!(q.peek_time(), Some(7));
            assert_eq!(q.len(), 1);
            assert!(!q.is_empty());
            q.pop();
            assert!(q.is_empty());
            assert_eq!(q.peek_time(), None);
        }
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        for mut q in both() {
            q.push(10, 10);
            q.push(5, 5);
            assert_eq!(q.pop(), Some((5, 5)));
            q.push(1, 1);
            q.push(20, 20);
            assert_eq!(q.pop(), Some((1, 1)));
            assert_eq!(q.pop(), Some((10, 10)));
            assert_eq!(q.pop(), Some((20, 20)));
        }
    }

    #[test]
    fn far_future_overflow_lane_round_trips() {
        let mut q = EventQueue::with_kind(QueueKind::Calendar);
        // Beyond the ~1s wheel window: multi-second and far-future times.
        q.push(10_000_000, 1);
        q.push(3_000_000, 2);
        q.push(500, 3);
        q.push(u64::MAX / 2, 4);
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some((500, 3)));
        assert_eq!(q.pop(), Some((3_000_000, 2)));
        assert_eq!(q.pop(), Some((10_000_000, 1)));
        assert_eq!(q.pop(), Some((u64::MAX / 2, 4)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_into_sorted_cursor_bucket_keeps_order() {
        let mut q = EventQueue::with_kind(QueueKind::Calendar);
        q.push(100, 0);
        q.push(101, 1);
        assert_eq!(q.pop(), Some((100, 0)));
        // The cursor bucket is now sorted; these land inside it.
        q.push(101, 9); // after (101, seq=1) by seq
        q.push(100, 8); // same instant as the popped event
        assert_eq!(q.pop(), Some((100, 8)));
        assert_eq!(q.pop(), Some((101, 1)));
        assert_eq!(q.pop(), Some((101, 9)));
    }

    #[test]
    fn sparse_times_fast_forward() {
        let mut q = EventQueue::with_kind(QueueKind::Calendar);
        // Each pop must fast-forward across an empty wheel, not walk it.
        for i in 0..50u64 {
            q.push(i * 60_000_000, i as i32);
        }
        for i in 0..50u64 {
            assert_eq!(q.pop(), Some((i * 60_000_000, i as i32)));
        }
    }

    #[test]
    fn overflow_migration_interleaves_with_window_events() {
        let mut q = EventQueue::with_kind(QueueKind::Calendar);
        q.push(2_000_000, 1); // overflow at anchor 0
        q.push(100, 2);
        assert_eq!(q.pop(), Some((100, 2)));
        // New events around the migrated one, pushed after the wheel moved.
        q.push(1_999_999, 3);
        q.push(2_000_001, 4);
        assert_eq!(q.pop(), Some((1_999_999, 3)));
        assert_eq!(q.pop(), Some((2_000_000, 1)));
        assert_eq!(q.pop(), Some((2_000_001, 4)));
    }

    #[test]
    fn env_escape_hatch_selects_heap() {
        assert_eq!(QueueKind::from_env(), QueueKind::Calendar);
        std::env::set_var("SIM_QUEUE", "heap");
        assert_eq!(QueueKind::from_env(), QueueKind::Heap);
        std::env::remove_var("SIM_QUEUE");
        assert_eq!(QueueKind::from_env(), QueueKind::Calendar);
    }
}
