//! The event queue: a binary heap ordered by `(time, sequence)`.
//!
//! The sequence number makes dispatch order total and deterministic: two
//! events scheduled for the same instant fire in the order they were
//! scheduled, independent of heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the earliest event first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of simulation events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `event` to fire at absolute time `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Remove and return the earliest event, with its fire time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Fire time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(5, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(7, ());
        assert_eq!(q.peek_time(), Some(7));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(10, 10);
        q.push(5, 5);
        assert_eq!(q.pop(), Some((5, 5)));
        q.push(1, 1);
        q.push(20, 20);
        assert_eq!(q.pop(), Some((1, 1)));
        assert_eq!(q.pop(), Some((10, 10)));
        assert_eq!(q.pop(), Some((20, 20)));
    }
}
