//! The simulation context: virtual clock + event queue + RNG.
//!
//! A `Sim<E>` is handed to every model method. Models schedule follow-up
//! events with [`Sim::schedule_in`] / [`Sim::schedule_at`]; the experiment
//! driver repeatedly calls [`Sim::next`] and dispatches each event to the
//! owning model. Event payload types are caller-defined, and store crates
//! stay queue-agnostic by being generic over any payload `W: From<StoreEvent>`.

use crate::queue::{EventQueue, QueueKind};
use crate::rng::SimRng;
use crate::time::SimTime;

/// Simulation context threaded through all model code.
pub struct Sim<E> {
    now: SimTime,
    queue: EventQueue<E>,
    rng: SimRng,
    dispatched: u64,
}

impl<E> Sim<E> {
    /// Create a simulation starting at time zero with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Self {
            now: 0,
            queue: EventQueue::new(),
            rng: SimRng::new(seed),
            dispatched: 0,
        }
    }

    /// The current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events dispatched so far (a cheap progress/size metric).
    #[inline]
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Which queue backend this simulation runs on (see
    /// [`QueueKind::from_env`]).
    pub fn queue_kind(&self) -> QueueKind {
        self.queue.kind()
    }

    /// Pending event count.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The simulation RNG.
    #[inline]
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Schedule `event` to fire `delay` microseconds from now.
    #[inline]
    pub fn schedule_in(&mut self, delay: u64, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Schedule `event` at an absolute virtual time. Scheduling in the past
    /// is a model bug; it fires immediately (clamped to `now`) in release
    /// builds and panics in debug builds.
    #[inline]
    pub fn schedule_at(&mut self, time: SimTime, event: E) {
        debug_assert!(
            time >= self.now,
            "event scheduled in the past: {time} < {}",
            self.now
        );
        self.queue.push(time.max(self.now), event);
    }

    /// Advance the clock to the next event and return it, or `None` when the
    /// simulation has quiesced. (Named like — but deliberately not an —
    /// `Iterator`: advancing mutates the clock that concurrently-held
    /// resources read.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<E> {
        let (t, ev) = self.queue.pop()?;
        debug_assert!(t >= self.now, "time went backwards");
        self.now = t;
        self.dispatched += 1;
        Some(ev)
    }

    /// Fire time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let mut sim: Sim<u32> = Sim::new(1);
        sim.schedule_in(100, 1);
        sim.schedule_in(50, 2);
        sim.schedule_at(75, 3);
        let mut last = 0;
        let mut order = Vec::new();
        while let Some(ev) = sim.next() {
            assert!(sim.now() >= last);
            last = sim.now();
            order.push((sim.now(), ev));
        }
        assert_eq!(order, vec![(50, 2), (75, 3), (100, 1)]);
        assert_eq!(sim.dispatched(), 3);
    }

    #[test]
    fn events_scheduled_during_dispatch_fire_later() {
        let mut sim: Sim<&'static str> = Sim::new(1);
        sim.schedule_in(10, "first");
        let mut log = Vec::new();
        while let Some(ev) = sim.next() {
            log.push((sim.now(), ev));
            if ev == "first" {
                sim.schedule_in(5, "second");
            }
        }
        assert_eq!(log, vec![(10, "first"), (15, "second")]);
    }

    #[test]
    fn zero_delay_event_fires_at_same_instant_after_current() {
        let mut sim: Sim<u8> = Sim::new(1);
        sim.schedule_in(0, 1);
        assert_eq!(sim.next(), Some(1));
        assert_eq!(sim.now(), 0);
    }

    #[test]
    fn rng_is_seed_deterministic() {
        let mut a: Sim<()> = Sim::new(99);
        let mut b: Sim<()> = Sim::new(99);
        use rand::RngCore;
        assert_eq!(a.rng().next_u64(), b.rng().next_u64());
    }

    #[test]
    fn pending_counts_queue_size() {
        let mut sim: Sim<u8> = Sim::new(0);
        assert_eq!(sim.pending(), 0);
        sim.schedule_in(1, 0);
        sim.schedule_in(2, 0);
        assert_eq!(sim.pending(), 2);
        assert_eq!(sim.peek_time(), Some(1));
    }
}
