//! Admission control: bounded server-entry queues with load shedding.
//!
//! Production stores bound the work they accept — HBase caps RPC handler
//! call queues, Cassandra sheds via `native_transport_max_concurrent_requests`
//! and dropped-mutation thresholds — so that saturation degrades into
//! fast-fail rejections instead of unbounded queueing collapse. This module
//! is the store-agnostic decision kernel both analogs consult at their front
//! door (cstore coordinator, hstore regionserver).
//!
//! The decision is a *pure function* of (config, current in-flight count,
//! the op's [`OpTag`], the clock): no RNG draws, no events. A disabled
//! config ([`AdmissionConfig::off`]) admits everything, so feature-off runs
//! are byte-identical to builds without this layer at all.
//!
//! The admit decision sits on every op's hot path at both stores' front
//! doors, so unwraps are banned (CI greps for the attribute below staying
//! in place).
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::time::SimTime;

/// Client-provided scheduling metadata carried alongside an operation.
///
/// The driver stamps each submission with the issuing tenant's priority and
/// the op's absolute deadline; stores consult it only when admission control
/// is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpTag {
    /// Scheduling priority: `0` is highest (shed last). Strict-priority
    /// shedding reserves queue headroom for lower values.
    pub priority: u8,
    /// Absolute deadline of the op (`SimTime::MAX` = unbounded). Used by
    /// deadline-aware early drop: ops whose remaining budget cannot cover
    /// estimated service are shed before consuming server resources.
    pub deadline: SimTime,
}

impl Default for OpTag {
    fn default() -> Self {
        Self {
            priority: 0,
            deadline: SimTime::MAX,
        }
    }
}

/// What the admission controller does when the entry queue is at bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Reject-on-full fast-fail: admit while in-flight < bound, shed
    /// everything past it regardless of priority or deadline.
    RejectNewest,
    /// Reject-on-full plus early drop of ops whose remaining deadline
    /// budget is smaller than the estimated service time — they would
    /// time out anyway, so shedding them at the door frees capacity for
    /// ops that can still make their deadline.
    DeadlineAware,
    /// Strict-priority shedding: each priority level `p` sees an effective
    /// bound of `max_in_flight >> p`, so low-priority (high `p`) tenants
    /// lose their headroom first as the queue fills and priority-0 traffic
    /// keeps the full bound.
    StrictPriority,
}

/// Bounded-admission configuration for a store's front door.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// In-flight op bound; `0` disables admission control entirely (every
    /// op admitted, zero extra work — the byte-identical off state).
    pub max_in_flight: usize,
    /// Shedding policy applied when the bound binds.
    pub policy: AdmissionPolicy,
    /// Estimated per-op service time, µs, for deadline-aware early drop.
    pub est_service_us: u64,
}

impl AdmissionConfig {
    /// Admission control disabled: admit everything.
    pub fn off() -> Self {
        Self {
            max_in_flight: 0,
            policy: AdmissionPolicy::RejectNewest,
            est_service_us: 0,
        }
    }

    /// True when the controller is active.
    pub fn enabled(&self) -> bool {
        self.max_in_flight > 0
    }

    /// The admission decision for one op: `true` = admit, `false` = shed.
    ///
    /// Pure: no RNG, no side effects. `in_flight` is the store's current
    /// pending-op count *before* this op.
    pub fn admits(&self, in_flight: usize, tag: OpTag, now: SimTime) -> bool {
        if !self.enabled() {
            return true;
        }
        if self.policy == AdmissionPolicy::DeadlineAware
            && tag.deadline != SimTime::MAX
            && tag.deadline.saturating_sub(now) < self.est_service_us
        {
            return false;
        }
        let bound = match self.policy {
            AdmissionPolicy::StrictPriority => {
                self.max_in_flight >> u32::from(tag.priority).min(usize::BITS - 1)
            }
            AdmissionPolicy::RejectNewest | AdmissionPolicy::DeadlineAware => self.max_in_flight,
        };
        in_flight < bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_admits_everything() {
        let cfg = AdmissionConfig::off();
        assert!(!cfg.enabled());
        let tag = OpTag {
            priority: 7,
            deadline: 0,
        };
        assert!(cfg.admits(usize::MAX - 1, tag, 1_000_000));
    }

    #[test]
    fn reject_newest_binds_at_depth() {
        let cfg = AdmissionConfig {
            max_in_flight: 8,
            policy: AdmissionPolicy::RejectNewest,
            est_service_us: 0,
        };
        assert!(cfg.admits(7, OpTag::default(), 0));
        assert!(!cfg.admits(8, OpTag::default(), 0));
        // Priority is ignored under RejectNewest.
        let low = OpTag {
            priority: 3,
            deadline: SimTime::MAX,
        };
        assert!(cfg.admits(7, low, 0));
    }

    #[test]
    fn deadline_aware_drops_doomed_ops_early() {
        let cfg = AdmissionConfig {
            max_in_flight: 100,
            policy: AdmissionPolicy::DeadlineAware,
            est_service_us: 5_000,
        };
        let doomed = OpTag {
            priority: 0,
            deadline: 10_000,
        };
        // 4 ms of budget left < 5 ms estimated service: shed even though
        // the queue is empty.
        assert!(!cfg.admits(0, doomed, 6_000));
        // 6 ms of budget left: admit.
        assert!(cfg.admits(0, doomed, 4_000));
        // Unbounded deadline is never early-dropped.
        assert!(cfg.admits(0, OpTag::default(), 6_000));
        // The depth bound still applies to admissible ops.
        assert!(!cfg.admits(100, doomed, 0));
    }

    #[test]
    fn strict_priority_sheds_low_priority_first() {
        let cfg = AdmissionConfig {
            max_in_flight: 64,
            policy: AdmissionPolicy::StrictPriority,
            est_service_us: 0,
        };
        let hi = OpTag::default();
        let lo = OpTag {
            priority: 2,
            deadline: SimTime::MAX,
        };
        // At 20 in flight, priority 2's bound (64 >> 2 = 16) already binds
        // while priority 0 still has headroom.
        assert!(cfg.admits(20, hi, 0));
        assert!(!cfg.admits(20, lo, 0));
        assert!(!cfg.admits(64, hi, 0));
        // Absurd priorities shift to a zero bound instead of overflowing.
        let floor = OpTag {
            priority: 255,
            deadline: SimTime::MAX,
        };
        assert!(!cfg.admits(0, floor, 0));
    }
}
