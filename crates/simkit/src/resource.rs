//! Analytic FIFO queueing resources.
//!
//! These model contended hardware (a disk head, a NIC, CPU cores) without a
//! per-request event pair. The contract: `acquire(now, service)` must be
//! called at the simulated instant the request *arrives* at the resource —
//! which holds naturally when calls happen inside event handlers, because the
//! event loop dispatches in time order. Under that contract the returned
//! completion times are exactly those of a FIFO queue.

use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A single-server FIFO queue (e.g. one disk spindle).
#[derive(Debug, Clone, Default)]
pub struct FifoResource {
    next_free: SimTime,
    busy_us: u64,
    ops: u64,
}

impl FifoResource {
    /// Create an idle resource.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue work arriving at `now` requiring `service` microseconds;
    /// returns the completion time.
    #[inline]
    pub fn acquire(&mut self, now: SimTime, service: u64) -> SimTime {
        let start = self.next_free.max(now);
        let done = start + service;
        self.next_free = done;
        self.busy_us += service;
        self.ops += 1;
        done
    }

    /// Outstanding backlog at `now`: how long a zero-cost request arriving
    /// now would wait.
    #[inline]
    pub fn backlog(&self, now: SimTime) -> u64 {
        self.next_free.saturating_sub(now)
    }

    /// Total service time accumulated.
    pub fn busy_us(&self) -> u64 {
        self.busy_us
    }

    /// Number of requests served.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Fraction of `elapsed` microseconds this resource was busy. Values
    /// above 1.0 indicate an over-committed (saturated) resource.
    pub fn utilization(&self, elapsed: u64) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.busy_us as f64 / elapsed as f64
        }
    }

    /// Reset counters (not the backlog); used between warm-up and measurement.
    pub fn reset_stats(&mut self) {
        self.busy_us = 0;
        self.ops = 0;
    }
}

/// A `k`-server FIFO queue (e.g. a CPU with `k` cores). Work is assigned to
/// the earliest-free server.
#[derive(Debug, Clone)]
pub struct MultiServer {
    // Min-heap over free times via Reverse ordering.
    free: BinaryHeap<std::cmp::Reverse<SimTime>>,
    servers: u32,
    busy_us: u64,
    ops: u64,
}

impl MultiServer {
    /// Create a resource with `servers` parallel servers.
    pub fn new(servers: u32) -> Self {
        assert!(servers > 0, "need at least one server");
        let mut free = BinaryHeap::with_capacity(servers as usize);
        for _ in 0..servers {
            free.push(std::cmp::Reverse(0));
        }
        Self {
            free,
            servers,
            busy_us: 0,
            ops: 0,
        }
    }

    /// Number of servers.
    pub fn servers(&self) -> u32 {
        self.servers
    }

    /// Enqueue work arriving at `now` requiring `service` microseconds;
    /// returns the completion time on the earliest-free server.
    #[inline]
    pub fn acquire(&mut self, now: SimTime, service: u64) -> SimTime {
        let std::cmp::Reverse(earliest) = self.free.pop().expect("server heap never empty");
        let start = earliest.max(now);
        let done = start + service;
        self.free.push(std::cmp::Reverse(done));
        self.busy_us += service;
        self.ops += 1;
        done
    }

    /// Wait a zero-cost request arriving at `now` would experience.
    pub fn backlog(&self, now: SimTime) -> u64 {
        self.free
            .iter()
            .map(|r| r.0)
            .min()
            .unwrap_or(0)
            .saturating_sub(now)
    }

    /// Total service time accumulated across all servers.
    pub fn busy_us(&self) -> u64 {
        self.busy_us
    }

    /// Number of requests served.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Mean per-server utilization over `elapsed` microseconds.
    pub fn utilization(&self, elapsed: u64) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.busy_us as f64 / (elapsed as f64 * self.servers as f64)
        }
    }

    /// Reset counters (not server free times).
    pub fn reset_stats(&mut self) {
        self.busy_us = 0;
        self.ops = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_idle_resource_serves_immediately() {
        let mut r = FifoResource::new();
        assert_eq!(r.acquire(100, 10), 110);
    }

    #[test]
    fn fifo_queues_back_to_back_work() {
        let mut r = FifoResource::new();
        assert_eq!(r.acquire(0, 10), 10);
        assert_eq!(r.acquire(0, 10), 20);
        assert_eq!(r.acquire(5, 10), 30);
        assert_eq!(r.backlog(5), 25);
    }

    #[test]
    fn fifo_idles_between_sparse_arrivals() {
        let mut r = FifoResource::new();
        assert_eq!(r.acquire(0, 10), 10);
        assert_eq!(r.acquire(100, 10), 110);
        assert_eq!(r.busy_us(), 20);
        assert_eq!(r.ops(), 2);
        // 20us busy over 110us elapsed.
        assert!((r.utilization(110) - 20.0 / 110.0).abs() < 1e-12);
    }

    #[test]
    fn fifo_reset_stats_keeps_backlog() {
        let mut r = FifoResource::new();
        r.acquire(0, 50);
        r.reset_stats();
        assert_eq!(r.busy_us(), 0);
        assert_eq!(r.ops(), 0);
        assert_eq!(r.backlog(0), 50);
    }

    #[test]
    fn multiserver_runs_k_jobs_in_parallel() {
        let mut c = MultiServer::new(2);
        assert_eq!(c.acquire(0, 10), 10);
        assert_eq!(c.acquire(0, 10), 10);
        // Third job waits for a core.
        assert_eq!(c.acquire(0, 10), 20);
    }

    #[test]
    fn multiserver_picks_earliest_free_server() {
        let mut c = MultiServer::new(2);
        c.acquire(0, 100); // server A busy until 100
        c.acquire(0, 10); // server B busy until 10
        assert_eq!(c.acquire(20, 5), 25); // lands on B, idle since 10
    }

    #[test]
    fn multiserver_utilization_accounts_for_server_count() {
        let mut c = MultiServer::new(4);
        c.acquire(0, 100);
        // One of four servers busy for the whole window.
        assert!((c.utilization(100) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn multiserver_backlog_zero_when_any_server_free() {
        let mut c = MultiServer::new(2);
        c.acquire(0, 100);
        assert_eq!(c.backlog(0), 0);
        c.acquire(0, 100);
        assert_eq!(c.backlog(0), 100);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn multiserver_rejects_zero_servers() {
        let _ = MultiServer::new(0);
    }

    #[test]
    fn fifo_completion_times_match_mm1_style_walkthrough() {
        // Arrivals at t=0,1,2 with 5us service each: completions 5,10,15.
        let mut r = FifoResource::new();
        let done: Vec<_> = [0u64, 1, 2].iter().map(|&t| r.acquire(t, 5)).collect();
        assert_eq!(done, vec![5, 10, 15]);
    }
}
