//! A seeded, deterministic fast hasher for hot-path hash maps.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3 behind a per-process
//! `RandomState`: robust against adversarial keys, but ~10× the cost of a
//! multiply-mix hash on the short fixed keys the simulator looks up millions
//! of times per run (block-cache keys, interned row keys, table ids) — and
//! randomly seeded, so map iteration order varies between runs. Neither
//! property is wanted here: keys come from the workload generator, not an
//! adversary, and determinism is the whole point of the harness. This module
//! provides an FxHash-style word-at-a-time multiply-rotate hasher with a
//! fixed seed, so any map built on it hashes fast *and* iterates in the same
//! order on every run of every platform.
//!
//! Callers must still not let map iteration order leak into simulation
//! results (the byte-identity CI checks enforce that); the fixed seed just
//! removes the run-to-run wobble on paths where order is unobservable.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from FxHash (Firefox's hasher): a dense-odd constant with good
/// avalanche behaviour under `rotate ^ mul`.
const K: u64 = 0x517c_c1b7_2722_0a95;

/// Fixed seed folded into every hash stream. Arbitrary non-zero constant;
/// changing it reshuffles map iteration order everywhere at once.
const SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// An FxHash-style streaming hasher: one rotate-xor-multiply per word.
#[derive(Debug, Clone)]
pub struct FastHasher {
    hash: u64,
}

impl Default for FastHasher {
    fn default() -> Self {
        Self { hash: SEED }
    }
}

impl FastHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Final mix so low-entropy single-word keys (small integers) spread
        // into the high bits HashMap's bucket mask uses.
        let h = self.hash;
        h ^ (h >> 32)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            let mut w = [0u8; 8];
            w.copy_from_slice(c);
            self.add_word(u64::from_le_bytes(w));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut w = [0u8; 8];
            w[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "a" and "a\0" hash differently.
            self.add_word(u64::from_le_bytes(w) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_word(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_word(i as u64);
    }
}

/// `BuildHasher` producing [`FastHasher`]s; `Default` so map constructors
/// stay one-liners.
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` on the seeded fast hasher: deterministic iteration order,
/// one multiply per word hashed.
pub type FastHashMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// A `HashSet` on the seeded fast hasher.
pub type FastHashSet<T> = HashSet<T, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    fn hash_of(bytes: &[u8]) -> u64 {
        let mut h = FastHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn deterministic_across_builders() {
        let b1 = FastBuildHasher::default();
        let b2 = FastBuildHasher::default();
        for key in [&b"user000042"[..], b"", b"a", b"0123456789abcdef"] {
            assert_eq!(b1.hash_one(key), b2.hash_one(key));
        }
    }

    #[test]
    fn distinguishes_prefixes_and_lengths() {
        assert_ne!(hash_of(b"a"), hash_of(b"b"));
        assert_ne!(hash_of(b"a"), hash_of(b"a\0"));
        assert_ne!(hash_of(b"user000001"), hash_of(b"user000002"));
        assert_ne!(hash_of(b""), hash_of(b"\0"));
    }

    #[test]
    fn spreads_sequential_integer_keys() {
        // Bucket masks use the low bits of `finish()`; sequential u64 keys
        // (table ids, block numbers) must not collide in the low byte.
        let b = FastBuildHasher::default();
        let mut low: FastHashSet<u8> = FastHashSet::default();
        for i in 0u64..64 {
            low.insert((b.hash_one(i) & 0xff) as u8);
        }
        assert!(low.len() > 48, "only {} distinct low bytes", low.len());
    }

    #[test]
    fn map_iteration_order_is_stable() {
        let build = || {
            let mut m: FastHashMap<u64, u64> = FastHashMap::default();
            for i in 0..1000u64 {
                m.insert(i * 17, i);
            }
            m.into_iter().collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
