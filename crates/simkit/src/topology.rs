//! Cluster topology: node identities, rack placement, propagation delays.
//!
//! The paper deliberately uses a single rack "to reduce interferences from
//! the partition problem"; the default topology mirrors that. Multi-rack
//! layouts are supported for the geo-latency extension experiments the paper
//! lists as future work.

use crate::time::SimTime;

/// Identity of a server node within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's index, for indexing into node vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Rack placement and network distances for a cluster.
#[derive(Debug, Clone)]
pub struct Topology {
    rack_of: Vec<u32>,
    intra_rack_us: u64,
    inter_rack_us: u64,
}

impl Topology {
    /// A single rack of `n` nodes with `prop_us` one-way propagation between
    /// any pair — the paper's testbed shape.
    pub fn single_rack(n: usize, prop_us: u64) -> Self {
        Self {
            rack_of: vec![0; n],
            intra_rack_us: prop_us,
            inter_rack_us: prop_us,
        }
    }

    /// Multiple racks of equal size. Nodes are assigned round-robin so
    /// consecutive node ids land in different racks.
    pub fn racks(n: usize, racks: u32, intra_rack_us: u64, inter_rack_us: u64) -> Self {
        assert!(racks > 0);
        Self {
            rack_of: (0..n as u32).map(|i| i % racks).collect(),
            intra_rack_us,
            inter_rack_us,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.rack_of.len()
    }

    /// True when the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.rack_of.is_empty()
    }

    /// Rack index of a node.
    pub fn rack(&self, node: NodeId) -> u32 {
        self.rack_of[node.index()]
    }

    /// One-way propagation delay between two nodes. Loopback is free.
    pub fn prop_us(&self, from: NodeId, to: NodeId) -> SimTime {
        if from == to {
            0
        } else if self.rack(from) == self.rack(to) {
            self.intra_rack_us
        } else {
            self.inter_rack_us
        }
    }

    /// Iterate over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.rack_of.len() as u32).map(NodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rack_uniform_latency() {
        let t = Topology::single_rack(15, 50);
        assert_eq!(t.len(), 15);
        assert_eq!(t.prop_us(NodeId(0), NodeId(14)), 50);
        assert_eq!(t.prop_us(NodeId(3), NodeId(3)), 0);
    }

    #[test]
    fn multi_rack_distances() {
        let t = Topology::racks(6, 2, 50, 500);
        // Round-robin: nodes 0,2,4 in rack 0; 1,3,5 in rack 1.
        assert_eq!(t.rack(NodeId(0)), 0);
        assert_eq!(t.rack(NodeId(1)), 1);
        assert_eq!(t.prop_us(NodeId(0), NodeId(2)), 50);
        assert_eq!(t.prop_us(NodeId(0), NodeId(1)), 500);
    }

    #[test]
    fn node_iteration_covers_all() {
        let t = Topology::single_rack(4, 10);
        let ids: Vec<_> = t.nodes().collect();
        assert_eq!(ids, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(NodeId(7).index(), 7);
    }

    #[test]
    fn empty_topology() {
        let t = Topology::single_rack(0, 50);
        assert!(t.is_empty());
        assert_eq!(t.nodes().count(), 0);
    }
}
