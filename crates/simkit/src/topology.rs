//! Cluster topology: node identities, region/rack placement, propagation
//! delays.
//!
//! The paper deliberately uses a single rack "to reduce interferences from
//! the partition problem"; the default topology mirrors that. The hierarchy
//! generalises to regions × racks × nodes for the geo-replication subsystem:
//! nodes within a rack are one `intra_rack_us` hop apart, racks within a
//! region one `inter_rack_us` hop, and regions are separated by an
//! asymmetric per-region-pair WAN matrix of one-way delays.

use crate::time::SimTime;

/// Identity of a server node within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's index, for indexing into node vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Region, rack placement and network distances for a cluster.
///
/// Distance lookup is a strict hierarchy: loopback is free, same-rack pairs
/// pay `intra_rack_us`, same-region/different-rack pairs pay
/// `inter_rack_us`, and cross-region pairs pay the (possibly asymmetric)
/// per-region-pair one-way WAN delay. Single-region topologies never consult
/// the WAN matrix, so pre-geo configurations behave bit-identically.
#[derive(Debug, Clone)]
pub struct Topology {
    rack_of: Vec<u32>,
    region_of: Vec<u32>,
    regions: u32,
    intra_rack_us: u64,
    inter_rack_us: u64,
    /// Flattened `regions × regions` matrix of one-way delays; entry
    /// `[from * regions + to]`. Empty for single-region topologies.
    wan_us: Vec<u64>,
}

impl Topology {
    /// A single rack of `n` nodes with `prop_us` one-way propagation between
    /// any pair — the paper's testbed shape.
    pub fn single_rack(n: usize, prop_us: u64) -> Self {
        Self {
            rack_of: vec![0; n],
            region_of: vec![0; n],
            regions: 1,
            intra_rack_us: prop_us,
            inter_rack_us: prop_us,
            wan_us: Vec::new(),
        }
    }

    /// Multiple racks of equal size within one region. Nodes are assigned
    /// round-robin so consecutive node ids land in different racks.
    pub fn racks(n: usize, racks: u32, intra_rack_us: u64, inter_rack_us: u64) -> Self {
        assert!(racks > 0);
        Self {
            rack_of: (0..n as u32).map(|i| i % racks).collect(),
            region_of: vec![0; n],
            regions: 1,
            intra_rack_us,
            inter_rack_us,
            wan_us: Vec::new(),
        }
    }

    /// A regions × racks × nodes hierarchy. Each region holds
    /// `nodes_per_region` consecutive node ids spread round-robin over
    /// `racks_per_region` racks; `wan_us` is the flattened
    /// `regions × regions` matrix of one-way inter-region delays
    /// (row-major, `[from * regions + to]`; the diagonal is ignored).
    pub fn geo(
        regions: u32,
        nodes_per_region: usize,
        racks_per_region: u32,
        intra_rack_us: u64,
        inter_rack_us: u64,
        wan_us: Vec<u64>,
    ) -> Self {
        assert!(regions > 0);
        assert!(racks_per_region > 0);
        assert_eq!(
            wan_us.len(),
            (regions as usize).pow(2),
            "WAN matrix must be regions x regions"
        );
        let n = regions as usize * nodes_per_region;
        let region_of: Vec<u32> = (0..n).map(|i| (i / nodes_per_region) as u32).collect();
        // Racks are globally numbered so two racks in different regions never
        // alias: region r owns racks [r*racks_per_region, (r+1)*racks_per_region).
        let rack_of: Vec<u32> = (0..n)
            .map(|i| {
                let r = (i / nodes_per_region) as u32;
                r * racks_per_region + (i % nodes_per_region) as u32 % racks_per_region
            })
            .collect();
        Self {
            rack_of,
            region_of,
            regions,
            intra_rack_us,
            inter_rack_us,
            wan_us,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.rack_of.len()
    }

    /// True when the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.rack_of.is_empty()
    }

    /// Rack index of a node.
    pub fn rack(&self, node: NodeId) -> u32 {
        self.rack_of[node.index()]
    }

    /// Region (datacenter) index of a node.
    pub fn region(&self, node: NodeId) -> u32 {
        self.region_of[node.index()]
    }

    /// Number of regions (datacenters). Always at least 1 for non-empty
    /// topologies.
    pub fn num_regions(&self) -> u32 {
        self.regions
    }

    /// True when the two nodes sit in different regions, i.e. traffic
    /// between them crosses a WAN link.
    pub fn is_wan(&self, from: NodeId, to: NodeId) -> bool {
        self.region(from) != self.region(to)
    }

    /// One-way WAN delay from region `from` to region `to`. Zero within a
    /// region.
    pub fn wan_us(&self, from: u32, to: u32) -> SimTime {
        if from == to {
            0
        } else {
            self.wan_us[(from * self.regions + to) as usize]
        }
    }

    /// One-way propagation delay between two nodes. Loopback is free.
    pub fn prop_us(&self, from: NodeId, to: NodeId) -> SimTime {
        if from == to {
            return 0;
        }
        let (rf, rt) = (self.region(from), self.region(to));
        if rf != rt {
            self.wan_us[(rf * self.regions + rt) as usize]
        } else if self.rack(from) == self.rack(to) {
            self.intra_rack_us
        } else {
            self.inter_rack_us
        }
    }

    /// Iterate over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.rack_of.len() as u32).map(NodeId)
    }

    /// Iterate over the node ids in one region.
    pub fn region_nodes(&self, region: u32) -> impl Iterator<Item = NodeId> + '_ {
        self.region_of
            .iter()
            .enumerate()
            .filter(move |&(_, &r)| r == region)
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Snapshot of the per-node region assignment, for ring placement.
    pub fn region_map(&self) -> Vec<u32> {
        self.region_of.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rack_uniform_latency() {
        let t = Topology::single_rack(15, 50);
        assert_eq!(t.len(), 15);
        assert_eq!(t.prop_us(NodeId(0), NodeId(14)), 50);
        assert_eq!(t.prop_us(NodeId(3), NodeId(3)), 0);
    }

    #[test]
    fn multi_rack_distances() {
        let t = Topology::racks(6, 2, 50, 500);
        // Round-robin: nodes 0,2,4 in rack 0; 1,3,5 in rack 1.
        assert_eq!(t.rack(NodeId(0)), 0);
        assert_eq!(t.rack(NodeId(1)), 1);
        assert_eq!(t.prop_us(NodeId(0), NodeId(2)), 50);
        assert_eq!(t.prop_us(NodeId(0), NodeId(1)), 500);
    }

    #[test]
    fn node_iteration_covers_all() {
        let t = Topology::single_rack(4, 10);
        let ids: Vec<_> = t.nodes().collect();
        assert_eq!(ids, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(NodeId(7).index(), 7);
    }

    #[test]
    fn empty_topology() {
        let t = Topology::single_rack(0, 50);
        assert!(t.is_empty());
        assert_eq!(t.nodes().count(), 0);
    }

    #[test]
    fn single_region_defaults() {
        let t = Topology::racks(6, 2, 50, 500);
        assert_eq!(t.num_regions(), 1);
        assert_eq!(t.region(NodeId(5)), 0);
        assert!(!t.is_wan(NodeId(0), NodeId(1)));
        assert_eq!(t.region_nodes(0).count(), 6);
    }

    #[test]
    fn geo_hierarchy_distances() {
        // 2 regions x 2 racks x 2 nodes; asymmetric WAN.
        let wan = vec![0, 25_000, 30_000, 0];
        let t = Topology::geo(2, 4, 2, 50, 500, wan);
        assert_eq!(t.len(), 8);
        assert_eq!(t.num_regions(), 2);
        // Region blocks are contiguous.
        assert_eq!(t.region(NodeId(3)), 0);
        assert_eq!(t.region(NodeId(4)), 1);
        // Same rack (0 and 2 both in region 0, rack 0).
        assert_eq!(t.prop_us(NodeId(0), NodeId(2)), 50);
        // Same region, different rack.
        assert_eq!(t.prop_us(NodeId(0), NodeId(1)), 500);
        // Cross-region is asymmetric.
        assert_eq!(t.prop_us(NodeId(0), NodeId(4)), 25_000);
        assert_eq!(t.prop_us(NodeId(4), NodeId(0)), 30_000);
        assert!(t.is_wan(NodeId(0), NodeId(4)));
        assert_eq!(t.wan_us(1, 0), 30_000);
        assert_eq!(t.wan_us(1, 1), 0);
    }

    #[test]
    fn geo_racks_never_alias_across_regions() {
        let t = Topology::geo(3, 3, 2, 50, 500, vec![0; 9]);
        let (r0, r5) = (t.rack(NodeId(0)), t.rack(NodeId(5)));
        assert_ne!(
            t.region(NodeId(0)),
            t.region(NodeId(5)),
            "test premise: different regions"
        );
        assert_ne!(r0, r5, "rack ids must be globally unique");
        // Cross-region beats rack distance even though rack math could collide.
        assert_eq!(t.prop_us(NodeId(0), NodeId(5)), 0); // WAN matrix all-zero here
        let ids: Vec<_> = t.region_nodes(1).collect();
        assert_eq!(ids, vec![NodeId(3), NodeId(4), NodeId(5)]);
    }
}
