//! Hardware models: disks, NICs, and whole nodes.
//!
//! Calibrated defaults mirror the paper's testbed machines: two Xeon L5640
//! processors (12 physical cores), 32 GB RAM, one SATA hard drive, and
//! gigabit Ethernet, all in a single rack.

use crate::resource::{FifoResource, MultiServer};
use crate::time::{transfer_time, SimTime};

/// Performance profile of a spinning disk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskProfile {
    /// Average positioning cost (seek + rotational latency) per random access.
    pub seek_us: u64,
    /// Sequential read bandwidth, bytes/second.
    pub read_bw: u64,
    /// Sequential write bandwidth, bytes/second.
    pub write_bw: u64,
}

impl DiskProfile {
    /// A 7200 RPM SATA drive of the paper's era: ~8 ms positioning,
    /// ~120 MB/s sequential.
    pub const fn sata_7200rpm() -> Self {
        Self {
            seek_us: 8_000,
            read_bw: 120_000_000,
            write_bw: 110_000_000,
        }
    }

    /// A datacenter SSD, for ablations: negligible positioning cost, high
    /// bandwidth.
    pub const fn datacenter_ssd() -> Self {
        Self {
            seek_us: 80,
            read_bw: 2_000_000_000,
            write_bw: 1_200_000_000,
        }
    }
}

/// A single spindle with FIFO head scheduling.
#[derive(Debug, Clone)]
pub struct Disk {
    profile: DiskProfile,
    queue: FifoResource,
    read_bytes: u64,
    written_bytes: u64,
    degrade: u32,
}

impl Disk {
    /// Create an idle disk with the given profile.
    pub fn new(profile: DiskProfile) -> Self {
        Self {
            profile,
            queue: FifoResource::new(),
            read_bytes: 0,
            written_bytes: 0,
            degrade: 1,
        }
    }

    /// The disk's profile.
    pub fn profile(&self) -> DiskProfile {
        self.profile
    }

    #[inline]
    fn service(&mut self, now: SimTime, duration: u64) -> SimTime {
        self.queue.acquire(now, duration * u64::from(self.degrade))
    }

    /// Random read of `bytes` (one positioning cost plus transfer).
    pub fn random_read(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.read_bytes += bytes;
        let d = self.profile.seek_us + transfer_time(bytes, self.profile.read_bw);
        self.service(now, d)
    }

    /// Sequential read of `bytes` (transfer only; head already positioned).
    pub fn seq_read(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.read_bytes += bytes;
        let d = transfer_time(bytes, self.profile.read_bw);
        self.service(now, d)
    }

    /// Random write of `bytes` (positioning plus transfer).
    pub fn random_write(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.written_bytes += bytes;
        let d = self.profile.seek_us + transfer_time(bytes, self.profile.write_bw);
        self.service(now, d)
    }

    /// Sequential (log-style) write of `bytes`.
    pub fn seq_write(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.written_bytes += bytes;
        let d = transfer_time(bytes, self.profile.write_bw);
        self.service(now, d)
    }

    /// An explicit fsync-style barrier: one positioning cost.
    pub fn sync(&mut self, now: SimTime) -> SimTime {
        let d = self.profile.seek_us;
        self.service(now, d)
    }

    /// Multiply every subsequent service time by `factor` (fault injection:
    /// a transiently slow disk). `1` restores nominal speed; `0` is clamped
    /// to `1`.
    pub fn set_degrade(&mut self, factor: u32) {
        self.degrade = factor.max(1);
    }

    /// The current service-time multiplier (`1` when healthy).
    pub fn degrade(&self) -> u32 {
        self.degrade
    }

    /// How long a request arriving now would wait before service begins.
    pub fn backlog(&self, now: SimTime) -> u64 {
        self.queue.backlog(now)
    }

    /// Busy fraction over `elapsed`.
    pub fn utilization(&self, elapsed: u64) -> f64 {
        self.queue.utilization(elapsed)
    }

    /// Total bytes read since the last stats reset.
    pub fn read_bytes(&self) -> u64 {
        self.read_bytes
    }

    /// Total bytes written since the last stats reset.
    pub fn written_bytes(&self) -> u64 {
        self.written_bytes
    }

    /// Reset accounting counters (not the queue backlog).
    pub fn reset_stats(&mut self) {
        self.queue.reset_stats();
        self.read_bytes = 0;
        self.written_bytes = 0;
    }
}

/// Performance profile of a network interface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NicProfile {
    /// Line-rate bandwidth, bytes/second.
    pub bw: u64,
    /// One-way propagation delay to a same-rack peer, microseconds.
    pub prop_us: u64,
}

impl NicProfile {
    /// Gigabit Ethernet within one rack: 125 MB/s, 50 µs one-way.
    pub const fn gige() -> Self {
        Self {
            bw: 125_000_000,
            prop_us: 50,
        }
    }

    /// 10 GbE, for ablations.
    pub const fn ten_gige() -> Self {
        Self {
            bw: 1_250_000_000,
            prop_us: 30,
        }
    }
}

/// A full-duplex NIC modeled as per-message serialization delay plus
/// bandwidth *accounting* (no FIFO head-of-line blocking).
///
/// Rationale: callers reserve link time at instants that can lie in the
/// simulated future (e.g. a response transmitted after a disk read
/// completes). A strict FIFO reservation would then block *earlier* sends
/// behind that future reservation — a pure modeling artifact. At gigabit
/// line rate the request/response messages here serialize in single-digit
/// microseconds, so contention between them is negligible next to the
/// millisecond disk times being measured; bulk flows (flushes, compactions,
/// re-replication) still pay their full serialization time and show up in
/// the utilization counters.
#[derive(Debug, Clone)]
pub struct Nic {
    profile: NicProfile,
    tx_busy_us: u64,
    rx_busy_us: u64,
    tx_msgs: u64,
    rx_msgs: u64,
    extra_tx_us: u64,
}

impl Nic {
    /// Create an idle NIC.
    pub fn new(profile: NicProfile) -> Self {
        Self {
            profile,
            tx_busy_us: 0,
            rx_busy_us: 0,
            tx_msgs: 0,
            rx_msgs: 0,
            extra_tx_us: 0,
        }
    }

    /// The NIC's profile.
    pub fn profile(&self) -> NicProfile {
        self.profile
    }

    /// Serialize `bytes` onto the wire starting at `now`; returns the instant
    /// the last byte leaves this host (including any injected egress delay).
    pub fn tx(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let t = transfer_time(bytes, self.profile.bw);
        self.tx_busy_us += t;
        self.tx_msgs += 1;
        now + t + self.extra_tx_us
    }

    /// Add a fixed delay to every subsequent transmitted message (fault
    /// injection: a transiently congested or flaky uplink). `0` restores
    /// nominal latency. The delay models queueing ahead of the NIC, so it
    /// does not count toward bandwidth utilization.
    pub fn set_extra_delay(&mut self, extra_us: u64) {
        self.extra_tx_us = extra_us;
    }

    /// The current injected egress delay (`0` when healthy).
    pub fn extra_delay(&self) -> u64 {
        self.extra_tx_us
    }

    /// Account for receiving `bytes` whose first bit arrives at `at`; returns
    /// the instant the message is fully received.
    pub fn rx(&mut self, at: SimTime, bytes: u64) -> SimTime {
        let t = transfer_time(bytes, self.profile.bw);
        self.rx_busy_us += t;
        self.rx_msgs += 1;
        at + t
    }

    /// Transmit-side utilization over `elapsed`.
    pub fn tx_utilization(&self, elapsed: u64) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.tx_busy_us as f64 / elapsed as f64
        }
    }

    /// Receive-side utilization over `elapsed`.
    pub fn rx_utilization(&self, elapsed: u64) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.rx_busy_us as f64 / elapsed as f64
        }
    }

    /// Messages transmitted since the last stats reset.
    pub fn tx_msgs(&self) -> u64 {
        self.tx_msgs
    }

    /// Reset accounting counters.
    pub fn reset_stats(&mut self) {
        self.tx_busy_us = 0;
        self.rx_busy_us = 0;
        self.tx_msgs = 0;
        self.rx_msgs = 0;
    }
}

/// Performance profile of a whole server machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeProfile {
    /// Physical CPU cores available to request processing.
    pub cores: u32,
    /// Disk profile (one data drive per machine, as in the paper).
    pub disk: DiskProfile,
    /// NIC profile.
    pub nic: NicProfile,
    /// RAM available to the database process, bytes.
    pub ram_bytes: u64,
}

impl NodeProfile {
    /// The paper's testbed machine: 2× Xeon L5640 (12 physical cores),
    /// 32 GB RAM, one SATA HDD, 1 GbE.
    pub const fn paper_testbed() -> Self {
        Self {
            cores: 12,
            disk: DiskProfile::sata_7200rpm(),
            nic: NicProfile::gige(),
            ram_bytes: 32 * 1024 * 1024 * 1024,
        }
    }
}

impl Default for NodeProfile {
    fn default() -> Self {
        Self::paper_testbed()
    }
}

/// The simulated hardware of one server: CPU cores, one disk, one NIC, and an
/// up/down flag for failure experiments.
#[derive(Debug, Clone)]
pub struct NodeHw {
    /// CPU cores as a multi-server FIFO resource.
    pub cpu: MultiServer,
    /// The machine's single data disk.
    pub disk: Disk,
    /// The machine's NIC.
    pub nic: Nic,
    profile: NodeProfile,
    up: bool,
}

impl NodeHw {
    /// Build a node from a profile.
    pub fn new(profile: NodeProfile) -> Self {
        Self {
            cpu: MultiServer::new(profile.cores),
            disk: Disk::new(profile.disk),
            nic: Nic::new(profile.nic),
            profile,
            up: true,
        }
    }

    /// The node's hardware profile.
    pub fn profile(&self) -> NodeProfile {
        self.profile
    }

    /// True while the node is serving requests.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Crash the node (used by availability/failover experiments).
    pub fn fail(&mut self) {
        self.up = false;
    }

    /// Bring the node back online.
    pub fn recover(&mut self) {
        self.up = true;
    }

    /// Enter a degraded-disk window: service times multiply by `factor`.
    pub fn degrade_disk(&mut self, factor: u32) {
        self.disk.set_degrade(factor);
    }

    /// End a degraded-disk window.
    pub fn restore_disk(&mut self) {
        self.disk.set_degrade(1);
    }

    /// Enter a network-delay window: every transmitted message pays an
    /// extra `extra_us`.
    pub fn delay_net(&mut self, extra_us: u64) {
        self.nic.set_extra_delay(extra_us);
    }

    /// End a network-delay window.
    pub fn restore_net(&mut self) {
        self.nic.set_extra_delay(0);
    }

    /// Reset all resource accounting counters.
    pub fn reset_stats(&mut self) {
        self.cpu.reset_stats();
        self.disk.reset_stats();
        self.nic.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_read_pays_seek_plus_transfer() {
        let mut d = Disk::new(DiskProfile::sata_7200rpm());
        // 120 MB/s => 64 KiB takes ceil(65536 * 1e6 / 120e6) = 547us.
        let done = d.random_read(0, 64 * 1024);
        assert_eq!(done, 8_000 + 547);
        assert_eq!(d.read_bytes(), 64 * 1024);
    }

    #[test]
    fn seq_write_skips_seek() {
        let mut d = Disk::new(DiskProfile::sata_7200rpm());
        let done = d.seq_write(0, 110_000_000);
        assert_eq!(done, 1_000_000);
        assert_eq!(d.written_bytes(), 110_000_000);
    }

    #[test]
    fn disk_requests_queue_fifo() {
        let mut d = Disk::new(DiskProfile::sata_7200rpm());
        let a = d.random_read(0, 0);
        let b = d.random_read(0, 0);
        assert_eq!(a, 8_000);
        assert_eq!(b, 16_000);
        assert_eq!(d.backlog(0), 16_000);
    }

    #[test]
    fn ssd_profile_is_dramatically_faster() {
        let mut hdd = Disk::new(DiskProfile::sata_7200rpm());
        let mut ssd = Disk::new(DiskProfile::datacenter_ssd());
        assert!(ssd.random_read(0, 4096) * 10 < hdd.random_read(0, 4096));
    }

    #[test]
    fn nic_tx_serialization_time() {
        let mut n = Nic::new(NicProfile::gige());
        // 125 MB/s => 1 KiB = ceil(1024e6/125e6) = 9us.
        assert_eq!(n.tx(0, 1024), 9);
        // No head-of-line blocking: a concurrent message pays only its own
        // serialization time; contention shows up in utilization instead.
        assert_eq!(n.tx(0, 1024), 9);
        assert_eq!(n.tx_msgs(), 2);
        assert!((n.tx_utilization(18) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn nic_rx_independent_of_tx() {
        let mut n = Nic::new(NicProfile::gige());
        n.tx(0, 1_000_000);
        assert_eq!(n.rx(0, 1024), 9);
        assert!(n.rx_utilization(100) > 0.0);
    }

    #[test]
    fn nic_future_reservation_does_not_delay_earlier_sends() {
        // The regression this model exists to avoid: a response reserved at
        // t=10_000 must not push a t=0 request to t>10_000.
        let mut n = Nic::new(NicProfile::gige());
        assert_eq!(n.tx(10_000, 1024), 10_009);
        assert_eq!(n.tx(0, 1024), 9);
    }

    #[test]
    fn node_failure_toggles() {
        let mut node = NodeHw::new(NodeProfile::paper_testbed());
        assert!(node.is_up());
        node.fail();
        assert!(!node.is_up());
        node.recover();
        assert!(node.is_up());
    }

    #[test]
    fn paper_testbed_matches_paper_hardware() {
        let p = NodeProfile::paper_testbed();
        assert_eq!(p.cores, 12);
        assert_eq!(p.ram_bytes, 32 * 1024 * 1024 * 1024);
        assert_eq!(p.nic.bw, 125_000_000);
    }

    #[test]
    fn sync_costs_one_positioning() {
        let mut d = Disk::new(DiskProfile::sata_7200rpm());
        assert_eq!(d.sync(0), 8_000);
    }

    #[test]
    fn degraded_disk_multiplies_service_times() {
        let mut d = Disk::new(DiskProfile::sata_7200rpm());
        d.set_degrade(4);
        assert_eq!(d.random_read(0, 64 * 1024), 4 * (8_000 + 547));
        d.set_degrade(1);
        // Healthy again: next request only queues behind the slow one.
        let healthy = Disk::new(DiskProfile::sata_7200rpm()).sync(0) + 4 * (8_000 + 547);
        assert_eq!(d.sync(0), healthy);
        // Factor 0 is clamped to 1, never a free disk.
        d.set_degrade(0);
        assert_eq!(d.degrade(), 1);
    }

    #[test]
    fn nic_extra_delay_shifts_tx_only() {
        let mut n = Nic::new(NicProfile::gige());
        n.set_extra_delay(500);
        assert_eq!(n.tx(0, 1024), 509);
        assert_eq!(n.rx(0, 1024), 9, "rx is not delayed");
        n.set_extra_delay(0);
        assert_eq!(n.tx(0, 1024), 9);
        // Delay models queueing ahead of the NIC: utilization unchanged.
        assert!((n.tx_utilization(18) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn node_hw_fault_helpers_round_trip() {
        let mut node = NodeHw::new(NodeProfile::paper_testbed());
        node.degrade_disk(8);
        node.delay_net(250);
        assert_eq!(node.disk.degrade(), 8);
        assert_eq!(node.nic.extra_delay(), 250);
        node.restore_disk();
        node.restore_net();
        assert_eq!(node.disk.degrade(), 1);
        assert_eq!(node.nic.extra_delay(), 0);
    }

    #[test]
    fn utilization_tracks_busy_fraction() {
        let mut d = Disk::new(DiskProfile::sata_7200rpm());
        d.random_read(0, 0); // 8000us busy
        assert!((d.utilization(16_000) - 0.5).abs() < 1e-9);
        d.reset_stats();
        assert_eq!(d.utilization(16_000), 0.0);
    }
}
