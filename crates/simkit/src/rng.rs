//! Deterministic, platform-stable random number generation.
//!
//! Experiments must reproduce bit-for-bit from a seed, so we avoid RNGs whose
//! output is allowed to change between library versions and implement
//! xoshiro256** seeded through splitmix64 (the reference seeding procedure).
//! The generator implements [`rand::RngCore`], so all `rand` distributions
//! work on top of it.

use rand::{Error, RngCore, SeedableRng};

/// splitmix64 step; used to expand a 64-bit seed into xoshiro state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** — fast, high-quality, and stable across platforms and
/// versions of this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; splitmix64 cannot produce
        // four zeros from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        Self { s }
    }

    /// Derive an independent child generator; used to give each simulated
    /// component its own stream without correlated draws.
    pub fn fork(&mut self, stream: u64) -> Self {
        let base = self.next_u64() ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
        Self::new(base)
    }

    /// Next value in `[0, bound)`. Uses Lemire's multiply-shift reduction;
    /// the tiny modulo bias is irrelevant for simulation purposes.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        // 53 high bits -> [0,1) double.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }
}

impl RngCore for SimRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for SimRng {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        Self::new(u64::from_le_bytes(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn known_answer_vector() {
        // Pin the output so accidental algorithm changes are caught: these
        // values were produced by this implementation and must never change.
        let mut r = SimRng::new(0);
        let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let again: Vec<u64> = {
            let mut r2 = SimRng::new(0);
            (0..4).map(|_| r2.next_u64()).collect()
        };
        assert_eq!(got, again);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::new(7);
        for _ in 0..10_000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn unit_in_half_open_interval() {
        let mut r = SimRng::new(9);
        for _ in 0..10_000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_mean_is_roughly_half() {
        let mut r = SimRng::new(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.unit()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn chance_matches_probability() {
        let mut r = SimRng::new(13);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.chance(0.1)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "rate={rate}");
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut root = SimRng::new(5);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same <= 1);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SimRng::new(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        // Overwhelmingly unlikely to remain zero.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn works_with_rand_distributions() {
        use rand::Rng;
        let mut r = SimRng::new(17);
        let x: f64 = r.gen_range(0.0..10.0);
        assert!((0.0..10.0).contains(&x));
    }
}
