//! Virtual time. The whole simulation runs on a `u64` microsecond clock.

/// A point in virtual time, in microseconds since simulation start.
pub type SimTime = u64;

/// Microseconds per millisecond.
pub const MICROS_PER_MILLI: u64 = 1_000;

/// Microseconds per second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// Convert milliseconds to microseconds.
#[inline]
pub const fn millis(ms: u64) -> u64 {
    ms * MICROS_PER_MILLI
}

/// Convert seconds to microseconds.
#[inline]
pub const fn secs(s: u64) -> u64 {
    s * MICROS_PER_SEC
}

/// Render a duration in microseconds as a human-readable string
/// (`"412us"`, `"3.20ms"`, `"1.50s"`).
pub fn fmt_duration(us: u64) -> String {
    if us < MICROS_PER_MILLI {
        format!("{us}us")
    } else if us < MICROS_PER_SEC {
        format!("{:.2}ms", us as f64 / MICROS_PER_MILLI as f64)
    } else {
        format!("{:.2}s", us as f64 / MICROS_PER_SEC as f64)
    }
}

/// Time taken to move `bytes` through a channel of `bytes_per_sec` bandwidth,
/// rounded up to at least one microsecond for any non-empty transfer.
#[inline]
pub fn transfer_time(bytes: u64, bytes_per_sec: u64) -> u64 {
    if bytes == 0 {
        return 0;
    }
    debug_assert!(bytes_per_sec > 0, "bandwidth must be positive");
    let us = (bytes as u128 * MICROS_PER_SEC as u128).div_ceil(bytes_per_sec as u128);
    (us as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        assert_eq!(millis(3), 3_000);
        assert_eq!(secs(2), 2_000_000);
    }

    #[test]
    fn transfer_time_basics() {
        // 1 MiB at 1 MiB/s is one second.
        assert_eq!(transfer_time(1 << 20, 1 << 20), MICROS_PER_SEC);
        // Zero bytes take zero time.
        assert_eq!(transfer_time(0, 125_000_000), 0);
        // Tiny transfers round up to 1us.
        assert_eq!(transfer_time(1, 125_000_000), 1);
    }

    #[test]
    fn transfer_time_gige_frame() {
        // A 1500-byte frame on 1 GbE (125 MB/s) is 12us.
        assert_eq!(transfer_time(1_500, 125_000_000), 12);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(412), "412us");
        assert_eq!(fmt_duration(3_200), "3.20ms");
        assert_eq!(fmt_duration(1_500_000), "1.50s");
    }

    #[test]
    fn transfer_time_no_overflow_on_large_inputs() {
        // Would overflow u64 multiplication without the u128 widening.
        let t = transfer_time(u64::MAX / 2, 1);
        assert!(t > 0);
    }
}
