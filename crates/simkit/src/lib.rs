//! # simkit — discrete-event simulation kernel
//!
//! This crate is the temporal substrate for the reproduction of *Wang et al.,
//! "Benchmarking Replication and Consistency Strategies in Cloud Serving
//! Databases: HBase and Cassandra"* (BPOE 2014). The paper ran on a physical
//! 16-machine rack; we substitute a deterministic discrete-event simulation of
//! that rack, calibrated to the paper's hardware (2× Xeon L5640, 32 GB RAM,
//! one HDD, 1 GbE, single rack).
//!
//! The kernel is intentionally small:
//!
//! * [`SimTime`] — virtual time in microseconds.
//! * [`EventQueue`] / [`Sim`] — a calendar-queue (time-wheel) event queue
//!   with a stable `(time, seq)` tie-break — the original binary heap is
//!   retained as a differential reference and `SIM_QUEUE=heap` escape
//!   hatch — plus the simulation context (clock + queue + RNG) that
//!   models schedule into.
//! * [`slab`] — generational slab storage ([`Slab`]/[`OpKey`]) for
//!   in-flight op contexts, replacing `HashMap`-backed per-op state on
//!   dispatch paths.
//! * [`resource`] — analytic FIFO queueing resources: single-server
//!   ([`FifoResource`]), multi-server ([`MultiServer`], used for CPU cores).
//!   Because events are dispatched in time order, calling
//!   `acquire(now, service)` at the simulated arrival instant yields exact
//!   FIFO queueing behaviour without per-request events.
//! * [`hardware`] — disk (seek + transfer), NIC (serialization +
//!   propagation) and whole-node models with profiles for the paper's
//!   testbed.
//! * [`topology`] — cluster/rack layout and inter-node latency.
//! * [`rng`] — a seedable, platform-stable xoshiro256** RNG implementing
//!   `rand::RngCore`, so every experiment is reproducible bit-for-bit.
//! * [`hash`] — a seeded deterministic FxHash-style hasher
//!   ([`FastHashMap`]) replacing SipHash on hot lookup maps (block cache,
//!   staleness watermarks, file indexes) where iteration order is
//!   unobservable and adversarial keys cannot occur.
//! * [`admission`] — the pure admission-control decision kernel
//!   ([`AdmissionConfig`]/[`OpTag`]) both store analogs consult at their
//!   front door for bounded queues and load shedding.
//!
//! Latency and throughput in the reproduced figures *emerge* from contention
//! on these resources; nothing in the upper layers hard-codes a curve.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod admission;
pub mod hardware;
pub mod hash;
pub mod queue;
pub mod resource;
pub mod rng;
pub mod sim;
pub mod slab;
pub mod time;
pub mod topology;

pub use admission::{AdmissionConfig, AdmissionPolicy, OpTag};
pub use hardware::{Disk, DiskProfile, Nic, NicProfile, NodeHw, NodeProfile};
pub use hash::{FastBuildHasher, FastHashMap, FastHashSet, FastHasher};
pub use queue::{EventQueue, QueueKind};
pub use resource::{FifoResource, MultiServer};
pub use rng::SimRng;
pub use sim::Sim;
pub use slab::{OpKey, Slab};
pub use time::{SimTime, MICROS_PER_MILLI, MICROS_PER_SEC};
pub use topology::{NodeId, Topology};
