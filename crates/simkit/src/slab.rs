//! A generational slab: dense, reusable storage for in-flight op contexts.
//!
//! The cluster models used to key per-op state by driver token in a
//! `HashMap<u64, Pending>` — one hash + probe per event touch, plus
//! rehash churn. A slab stores contexts in a `Vec` and hands out a
//! compact `OpKey` (slot index + generation) instead: lookups are a
//! bounds check and a generation compare, and freed slots are recycled
//! through a free list so steady-state dispatch allocates nothing.
//!
//! The generation makes stale keys safe: events that fire after their op
//! was answered or timed out (late replica acks, the op's own timeout)
//! carry a key whose generation no longer matches the slot, and `get`
//! returns `None` — exactly the semantics the `HashMap` miss used to
//! provide, without the possibility of slot-reuse aliasing.

/// A key into a [`Slab`]: low 32 bits slot index, high 32 bits generation.
///
/// Packed into a `u64` so cluster events can carry it where they used to
/// carry the driver token. Generation 0 is never issued, which reserves
/// [`OpKey::NONE`] (all zeros) as an explicit "no op" sentinel for
/// bookkeeping events (hinted handoff, read repair) that flow through the
/// same machinery without a pending op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpKey(pub u64);

impl OpKey {
    /// The "no pending op" sentinel; never returned by [`Slab::insert`].
    pub const NONE: OpKey = OpKey(0);

    #[inline]
    fn slot(self) -> usize {
        (self.0 & 0xFFFF_FFFF) as usize
    }

    #[inline]
    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }

    #[inline]
    fn pack(slot: u32, generation: u32) -> Self {
        OpKey(((generation as u64) << 32) | slot as u64)
    }

    /// True for the [`OpKey::NONE`] sentinel.
    #[inline]
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

#[derive(Debug, Clone)]
enum Slot<T> {
    /// Occupied at the stored generation.
    Full { generation: u32, value: T },
    /// Free; `next_free` chains the free list, `generation` is the one the
    /// slot will be reissued at.
    Free {
        generation: u32,
        next_free: Option<u32>,
    },
}

/// Dense generational storage. See the module docs for the design.
#[derive(Debug, Clone)]
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free_head: Option<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            free_head: None,
            len: 0,
        }
    }

    /// An empty slab with room for `cap` contexts before growing.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            slots: Vec::with_capacity(cap),
            free_head: None,
            len: 0,
        }
    }

    /// Store `value`, returning its key. Reuses a freed slot when one is
    /// available; the returned key's generation is always ≥ 1, so it never
    /// collides with [`OpKey::NONE`].
    pub fn insert(&mut self, value: T) -> OpKey {
        if let Some(slot) = self.free_head {
            let s = &mut self.slots[slot as usize];
            let generation = match *s {
                Slot::Free {
                    generation,
                    next_free,
                } => {
                    self.free_head = next_free;
                    generation
                }
                Slot::Full { .. } => unreachable!("free list points at a full slot"),
            };
            *s = Slot::Full { generation, value };
            self.len += 1;
            OpKey::pack(slot, generation)
        } else {
            let slot = u32::try_from(self.slots.len()).expect("slab slot overflow");
            self.slots.push(Slot::Full {
                generation: 1,
                value,
            });
            self.len += 1;
            OpKey::pack(slot, 1)
        }
    }

    /// The value at `key`, or `None` if it was removed (or the key is the
    /// NONE sentinel / from a recycled slot).
    #[inline]
    pub fn get(&self, key: OpKey) -> Option<&T> {
        match self.slots.get(key.slot()) {
            Some(Slot::Full { generation, value }) if *generation == key.generation() => {
                Some(value)
            }
            _ => None,
        }
    }

    /// Mutable access to the value at `key`, with the same staleness rules
    /// as [`Slab::get`].
    #[inline]
    pub fn get_mut(&mut self, key: OpKey) -> Option<&mut T> {
        match self.slots.get_mut(key.slot()) {
            Some(Slot::Full { generation, value }) if *generation == key.generation() => {
                Some(value)
            }
            _ => None,
        }
    }

    /// Remove and return the value at `key`; `None` if already gone. The
    /// slot's generation is bumped so outstanding copies of `key` go stale.
    pub fn remove(&mut self, key: OpKey) -> Option<T> {
        let slot = key.slot();
        match self.slots.get_mut(slot) {
            Some(s @ Slot::Full { .. }) => {
                let generation = match s {
                    Slot::Full { generation, .. } => *generation,
                    Slot::Free { .. } => unreachable!(),
                };
                if generation != key.generation() {
                    return None;
                }
                // Wrapping is fine: a key would have to survive 2^32
                // reuses of its slot to alias, far beyond any run length.
                let next_gen = generation.wrapping_add(1).max(1);
                let old = std::mem::replace(
                    s,
                    Slot::Free {
                        generation: next_gen,
                        next_free: self.free_head,
                    },
                );
                self.free_head = Some(slot as u32);
                self.len -= 1;
                match old {
                    Slot::Full { value, .. } => Some(value),
                    Slot::Free { .. } => unreachable!(),
                }
            }
            _ => None,
        }
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no values are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate over live `(key, value)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (OpKey, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| match s {
            Slot::Full { generation, value } => Some((OpKey::pack(i as u32, *generation), value)),
            Slot::Free { .. } => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s.get(b), Some(&"b"));
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.get(a), None);
        assert_eq!(s.remove(a), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn stale_key_goes_dead_on_slot_reuse() {
        let mut s = Slab::new();
        let a = s.insert(1);
        s.remove(a);
        let b = s.insert(2);
        // Same slot, new generation.
        assert_ne!(a, b);
        assert_eq!(s.get(a), None);
        assert_eq!(s.get_mut(a), None);
        assert_eq!(s.remove(a), None);
        assert_eq!(s.get(b), Some(&2));
    }

    #[test]
    fn none_sentinel_never_resolves() {
        let mut s: Slab<i32> = Slab::new();
        assert!(OpKey::NONE.is_none());
        assert_eq!(s.get(OpKey::NONE), None);
        let k = s.insert(7);
        assert!(!k.is_none());
        assert_eq!(s.get(OpKey::NONE), None);
        assert_eq!(s.remove(OpKey::NONE), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn free_list_recycles_slots() {
        let mut s = Slab::new();
        let keys: Vec<_> = (0..100).map(|i| s.insert(i)).collect();
        for k in &keys {
            s.remove(*k);
        }
        assert!(s.is_empty());
        for i in 0..100 {
            s.insert(i);
        }
        // All inserts reused freed slots — no growth beyond the first 100.
        assert_eq!(s.slots.len(), 100);
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut s = Slab::new();
        let k = s.insert(vec![1, 2]);
        s.get_mut(k).unwrap().push(3);
        assert_eq!(s.get(k), Some(&vec![1, 2, 3]));
    }

    #[test]
    fn iter_visits_live_entries_in_slot_order() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        let c = s.insert("c");
        s.remove(b);
        let seen: Vec<_> = s.iter().collect();
        assert_eq!(seen, vec![(a, &"a"), (c, &"c")]);
    }
}
