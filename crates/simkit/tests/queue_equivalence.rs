//! Differential property tests: the calendar queue must pop the exact
//! `(time, seq)` total order of the reference binary heap under arbitrary
//! push/pop interleavings. Since every simulation result is a pure
//! function of dispatch order, this equivalence is what makes the queue
//! swap invisible to every experiment.

use proptest::prelude::*;
use simkit::{EventQueue, QueueKind};

/// One step of an interleaved schedule.
#[derive(Debug, Clone)]
enum Step {
    /// Push at `last_popped_time + offset` (queues forbid the past once
    /// popping starts; offsets keep schedules valid by construction).
    Push(u64),
    /// Pop once and record the result.
    Pop,
}

/// Decode a raw `(selector, value)` pair into a schedule step, weighting
/// the regimes the wheel must handle: near-future pushes (its fast path),
/// same-instant ties (insertion order is the only order left), far-future
/// pushes (the overflow lane), and pops.
fn decode(sel: u8, raw: u64) -> Step {
    match sel {
        // Mostly near-future pushes: the regime the wheel optimizes.
        0..=3 => Step::Push(raw % 2_000),
        // Same-instant pushes: tie-break order must match exactly.
        4 => Step::Push(0),
        // Far-future pushes: exercise the overflow lane and migration.
        5 => Step::Push(2_000_000 + raw % 4_000_000_000),
        _ => Step::Pop,
    }
}

/// A pop log: the `(time, event)` sequence one backend produced.
type PopLog = Vec<(u64, u64)>;

/// Run one schedule against both backends and return their pop logs.
fn run_both(steps: &[Step]) -> (PopLog, PopLog) {
    let mut logs: Vec<PopLog> = Vec::new();
    for kind in [QueueKind::Calendar, QueueKind::Heap] {
        let mut q: EventQueue<u64> = EventQueue::with_kind(kind);
        let mut log = Vec::new();
        let mut clock = 0u64; // last popped time: the sim's `now`
        let mut id = 0u64;
        for step in steps {
            match step {
                Step::Push(offset) => {
                    q.push(clock + offset, id);
                    id += 1;
                }
                Step::Pop => {
                    if let Some((t, ev)) = q.pop() {
                        assert!(t >= clock, "time went backwards");
                        clock = t;
                        log.push((t, ev));
                    }
                }
            }
        }
        // Drain what's left: the full order must agree, not just a prefix.
        while let Some((t, ev)) = q.pop() {
            assert!(t >= clock);
            clock = t;
            log.push((t, ev));
        }
        logs.push(log);
    }
    let heap = logs.pop().expect("two logs");
    let calendar = logs.pop().expect("two logs");
    (calendar, heap)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary interleavings: identical pop sequences, event for event.
    #[test]
    fn calendar_matches_heap(
        raw in prop::collection::vec((0u8..9, 0u64..u64::MAX / 2), 0..400)
    ) {
        let steps: Vec<Step> = raw.iter().map(|&(s, v)| decode(s, v)).collect();
        let (calendar, heap) = run_both(&steps);
        prop_assert_eq!(calendar, heap);
    }

    /// All-ties stress: every event at the same instant; insertion order
    /// is the only order left and both backends must honour it.
    #[test]
    fn same_instant_ties_preserve_insertion_order(n in 0usize..300) {
        let steps: Vec<Step> = vec![Step::Push(0); n];
        let (calendar, heap) = run_both(&steps);
        prop_assert_eq!(calendar.clone(), heap);
        for (i, &(t, ev)) in calendar.iter().enumerate() {
            prop_assert_eq!(t, 0);
            prop_assert_eq!(ev, i as u64);
        }
    }

    /// Far-future-only schedules live entirely in the overflow lane and
    /// still match the heap through migration and wheel fast-forwards.
    #[test]
    fn overflow_lane_matches_heap(
        offsets in prop::collection::vec(1_000_000u64..1 << 40, 1..100)
    ) {
        let steps: Vec<Step> = offsets
            .iter()
            .flat_map(|&o| [Step::Push(o), Step::Pop])
            .collect();
        let (calendar, heap) = run_both(&steps);
        prop_assert_eq!(calendar, heap);
    }
}
