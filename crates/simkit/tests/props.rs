//! Property-based tests for the simulation kernel's invariants.

use proptest::prelude::*;
use simkit::{EventQueue, FifoResource, MultiServer, SimRng, Topology};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Events always pop in non-decreasing time order, with FIFO tie-break.
    #[test]
    fn event_queue_is_time_ordered(times in prop::collection::vec(0u64..10_000, 0..500)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
        }
        let mut last_time = 0;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut last_t = None;
        while let Some((t, idx)) = q.pop() {
            prop_assert!(t >= last_time);
            if last_t == Some(t) {
                // Ties preserve insertion order.
                prop_assert!(seen_at_time.last().is_none_or(|&p| p < idx));
            } else {
                seen_at_time.clear();
            }
            seen_at_time.push(idx);
            last_t = Some(t);
            last_time = t;
        }
    }

    /// A FIFO resource never overlaps service periods and never serves
    /// before arrival.
    #[test]
    fn fifo_resource_is_work_conserving(
        jobs in prop::collection::vec((0u64..1_000, 1u64..50), 1..200)
    ) {
        let mut sorted = jobs.clone();
        sorted.sort();
        let mut r = FifoResource::new();
        let mut prev_done = 0;
        let mut total_service = 0;
        for (arrive, service) in sorted {
            let done = r.acquire(arrive, service);
            prop_assert!(done >= arrive + service, "served before arrival");
            prop_assert!(done >= prev_done + service, "overlapping service");
            prev_done = done;
            total_service += service;
        }
        prop_assert_eq!(r.busy_us(), total_service);
    }

    /// A k-server resource is never worse than a single server and never
    /// better than k ideal servers.
    #[test]
    fn multiserver_bounded_by_ideal(
        jobs in prop::collection::vec((0u64..500, 1u64..40), 1..120),
        servers in 1u32..8,
    ) {
        let mut sorted = jobs.clone();
        sorted.sort();
        let mut multi = MultiServer::new(servers);
        let mut single = FifoResource::new();
        let mut makespan_multi = 0;
        let mut makespan_single = 0;
        for &(arrive, service) in &sorted {
            makespan_multi = makespan_multi.max(multi.acquire(arrive, service));
            makespan_single = makespan_single.max(single.acquire(arrive, service));
        }
        prop_assert!(makespan_multi <= makespan_single);
        // Lower bound: total work / k.
        let total: u64 = sorted.iter().map(|&(_, s)| s).sum();
        prop_assert!(makespan_multi >= total / u64::from(servers));
    }

    /// The RNG is reproducible and its unit draws stay in [0, 1).
    #[test]
    fn rng_reproducible_and_bounded(seed in any::<u64>()) {
        use rand::RngCore;
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..64 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = SimRng::new(seed ^ 0xABCD);
        for _ in 0..256 {
            let u = r.unit();
            prop_assert!((0.0..1.0).contains(&u));
            let v = r.below(17);
            prop_assert!(v < 17);
        }
    }

    /// Topology distances are symmetric and loopback-free.
    #[test]
    fn topology_symmetric(n in 1usize..40, racks in 1u32..5) {
        let t = Topology::racks(n, racks, 50, 500);
        for a in t.nodes() {
            for b in t.nodes() {
                prop_assert_eq!(t.prop_us(a, b), t.prop_us(b, a));
                if a == b {
                    prop_assert_eq!(t.prop_us(a, b), 0);
                }
            }
        }
    }
}
